package wire

// Optional trailers ride the existing frame format after a message's last
// field. Three are defined:
//
//	trace:    [1]byte magic (0xA7)  [1]byte id length  id bytes
//	sequence: [1]byte magic (0xA8)  [8]byte big-endian sequence ID
//	span:     [1]byte magic (0xA9)  [8]byte span ID  [8]byte parent span ID
//
// Decoders have never checked for trailing bytes (mutation tests rely on
// junk suffixes being ignored), so a trailered frame decodes identically on
// an older peer: new client -> old server and old client -> new server both
// keep working, which is the backward-compatibility contract here. The trace
// trailer correlates one request across client logs, server logs and both
// sides' latency histograms; the sequence trailer lets a pipelining client
// demultiplex many in-flight responses on one connection (the server echoes
// it verbatim on the response frame); the span trailer promotes the trace
// into a distributed span tree -- the sender mints the hop's span ID, names
// its own current span as the parent, and the receiver records its handling
// of the frame under the received IDs, so `besteffsctl trace` can stitch the
// cross-node tree back together.
//
// Trailers may appear in any order, but the walk must consume the remainder
// of the body exactly: any unrecognized or malformed byte discards ALL
// trailers, never just the broken one. Half-parsed trailers would make the
// "junk suffix" compatibility story ambiguous.

import "encoding/binary"

// traceMagic introduces the optional trace trailer. Chosen outside the
// opcode ranges so a trailer misread as a message start fails cleanly.
const traceMagic = 0xA7

// seqMagic introduces the optional sequence trailer.
const seqMagic = 0xA8

// spanMagic introduces the optional span trailer.
const spanMagic = 0xA9

// MaxTraceIDLen bounds a trace ID; longer IDs are silently not attached.
const MaxTraceIDLen = 64

// TraceID identifies one request across client and server logs and
// histograms. Empty means untraced.
type TraceID string

// Trailers carries every optional trailer found after a message body.
type Trailers struct {
	// Trace is the trace ID; empty means untraced.
	Trace TraceID
	// Seq is the pipelining sequence ID, valid only when HasSeq is set
	// (zero is a legal sequence value).
	Seq uint64
	// HasSeq reports whether a sequence trailer was present.
	HasSeq bool
	// Span is the span ID the sender minted for this hop, valid only when
	// HasSpan is set.
	Span uint64
	// Parent is the sender's own span, which Span descends from (0 when the
	// sender is the trace root).
	Parent uint64
	// HasSpan reports whether a span trailer was present.
	HasSpan bool
}

// AppendTraceID appends the optional trace trailer to an encoded frame
// body. Empty or oversized IDs leave the body unchanged.
func AppendTraceID(body []byte, id TraceID) []byte {
	if id == "" || len(id) > MaxTraceIDLen {
		return body
	}
	body = append(body, traceMagic, byte(len(id)))
	return append(body, id...)
}

// AppendSeq appends the optional sequence trailer to an encoded frame body.
//
//besteffs:hotpath-ok the trailer lands in the frame buffer's spare capacity when the encoder reserved it
func AppendSeq(body []byte, seq uint64) []byte {
	body = append(body, seqMagic)
	return binary.BigEndian.AppendUint64(body, seq)
}

// AppendSpan appends the optional span trailer to an encoded frame body: the
// span ID minted for this hop and the sender's own span it descends from. A
// zero span ID leaves the body unchanged (0 means "no span").
func AppendSpan(body []byte, span, parent uint64) []byte {
	if span == 0 {
		return body
	}
	body = append(body, spanMagic)
	body = binary.BigEndian.AppendUint64(body, span)
	return binary.BigEndian.AppendUint64(body, parent)
}

// DecodeWithTrailers decodes a frame body and extracts every optional
// trailer. Missing or malformed trailers yield the zero Trailers, never an
// error: trailers are plumbing, not protocol.
//
//besteffs:hotpath-ok decoding materializes the message it returns
func DecodeWithTrailers(body []byte) (Message, Trailers, error) {
	c := &cursor{buf: body}
	m, err := decodeMsg(c)
	if err != nil {
		return nil, Trailers{}, err
	}
	return m, parseTrailers(c.rest()), nil
}

// DecodeTraced decodes a frame body and extracts the trace trailer, if any.
func DecodeTraced(body []byte) (Message, TraceID, error) {
	m, tr, err := DecodeWithTrailers(body)
	if err != nil {
		return nil, "", err
	}
	return m, tr.Trace, nil
}

// parseTrailers walks the bytes after the message fields. The walk must
// consume rest exactly; anything unrecognized, short or malformed discards
// all trailers (the frame is treated as if it had a junk suffix).
func parseTrailers(rest []byte) Trailers {
	var t Trailers
	for len(rest) > 0 {
		switch rest[0] {
		case traceMagic:
			if len(rest) < 2 {
				return Trailers{}
			}
			n := int(rest[1])
			if n == 0 || n > MaxTraceIDLen || len(rest) < 2+n {
				return Trailers{}
			}
			t.Trace = TraceID(rest[2 : 2+n])
			rest = rest[2+n:]
		case seqMagic:
			if len(rest) < 9 {
				return Trailers{}
			}
			t.Seq = binary.BigEndian.Uint64(rest[1:9])
			t.HasSeq = true
			rest = rest[9:]
		case spanMagic:
			if len(rest) < 17 {
				return Trailers{}
			}
			t.Span = binary.BigEndian.Uint64(rest[1:9])
			t.Parent = binary.BigEndian.Uint64(rest[9:17])
			t.HasSpan = true
			rest = rest[17:]
		default:
			return Trailers{}
		}
	}
	return t
}
