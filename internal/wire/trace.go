package wire

// Request tracing rides the existing frame format as an optional trailer
// appended after a message's last field:
//
//	[1]byte magic (0xA7)  [1]byte id length  id bytes
//
// Decoders have never checked for trailing bytes (mutation tests rely on
// junk suffixes being ignored), so a traced frame decodes identically on a
// pre-trace peer: new client -> old server and old client -> new server both
// keep working, which is the backward-compatibility contract here. Peers
// that do understand the trailer correlate one request across client logs,
// server logs and both sides' latency histograms.

// traceMagic introduces the optional trace trailer. Chosen outside the
// opcode ranges so a trailer misread as a message start fails cleanly.
const traceMagic = 0xA7

// MaxTraceIDLen bounds a trace ID; longer IDs are silently not attached.
const MaxTraceIDLen = 64

// TraceID identifies one request across client and server logs and
// histograms. Empty means untraced.
type TraceID string

// AppendTraceID appends the optional trace trailer to an encoded frame
// body. Empty or oversized IDs leave the body unchanged.
func AppendTraceID(body []byte, id TraceID) []byte {
	if id == "" || len(id) > MaxTraceIDLen {
		return body
	}
	body = append(body, traceMagic, byte(len(id)))
	return append(body, id...)
}

// DecodeTraced decodes a frame body and extracts the trace trailer, if any.
// A missing or malformed trailer yields an empty TraceID, never an error:
// tracing is observability, not protocol.
func DecodeTraced(body []byte) (Message, TraceID, error) {
	c := &cursor{buf: body}
	m, err := decodeMsg(c)
	if err != nil {
		return nil, "", err
	}
	return m, parseTraceTrailer(c.rest()), nil
}

// parseTraceTrailer reads a trace trailer that spans rest exactly; anything
// else (no trailer, junk, short) is treated as untraced.
func parseTraceTrailer(rest []byte) TraceID {
	if len(rest) < 2 || rest[0] != traceMagic {
		return ""
	}
	n := int(rest[1])
	if n == 0 || n > MaxTraceIDLen || len(rest) != 2+n {
		return ""
	}
	return TraceID(rest[2 : 2+n])
}
