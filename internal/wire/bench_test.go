package wire

import (
	"bytes"
	"testing"

	"besteffs/internal/importance"
)

// BenchmarkEncodePut measures request serialization for a media-sized
// payload.
func BenchmarkEncodePut(b *testing.B) {
	m := &Put{
		ID:         "cs101/spring-0/lecture-12/u",
		Owner:      "university",
		Importance: importance.TwoStep{Plateau: 1, Persist: 70 * importance.Day, Wane: 730 * importance.Day},
		Payload:    make([]byte, 1<<20),
	}
	b.ReportAllocs()
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodePut measures request parsing.
func BenchmarkDecodePut(b *testing.B) {
	m := &Put{
		ID:         "cs101/spring-0/lecture-12/u",
		Owner:      "university",
		Importance: importance.TwoStep{Plateau: 1, Persist: 70 * importance.Day, Wane: 730 * importance.Day},
		Payload:    make([]byte, 1<<20),
	}
	body, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		if _, err := Decode(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip measures framing overhead.
func BenchmarkFrameRoundTrip(b *testing.B) {
	body := make([]byte, 4096)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, body); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
