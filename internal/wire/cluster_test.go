package wire

import (
	"bytes"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

func TestClusterMessageRoundTrips(t *testing.T) {
	day := importance.Day
	twoStep := importance.TwoStep{Plateau: 0.9, Persist: 10 * day, Wane: 20 * day}
	entries := []IndexEntry{
		{ID: "a/1", Version: 2, CRC: 0xDEADBEEF, Size: 4096, Initial: 0.9, AgeNanos: int64(time.Hour)},
		{ID: "b/2", Version: 1, CRC: 7, Size: 1, Initial: 1, AgeNanos: 0},
	}
	members := []MemberInfo{
		{Addr: "10.0.0.1:7070", Incarnation: 11, Version: 3, Boundary: 0.25, Free: 1 << 30, Density: 0.8, Alive: true,
			Device: "ab12cd34ef56", ConfigVersion: 3},
		{Addr: "10.0.0.2:7070", Incarnation: 9, Version: 88, Boundary: 0, Free: 0, Density: 0.1, Alive: false},
	}
	cfg := ClusterConfig{
		Version: 3, Origin: "10.0.0.1:7070", Replicas: 2, Threshold: 0.8,
		GossipIntervalNanos: int64(time.Second), RepairIntervalNanos: int64(30 * time.Second),
	}
	tests := []Message{
		&Replicate{
			ID: "cs101/l1", Owner: "prof", Class: object.ClassUniversity,
			Version: 2, Importance: twoStep,
			AgeNanos: int64(3 * time.Hour), Payload: []byte("video-bytes"),
		},
		&Index{Threshold: 0.5},
		&IndexResult{Entries: entries},
		&IndexResult{},
		&IndexDiff{Threshold: 0.5, Entries: entries},
		&IndexDiff{},
		&IndexDiffResult{Missing: entries, Need: []object.ID{"c", "d"}},
		&IndexDiffResult{},
		&Gossip{
			From: members[0], Epoch: 4,
			ShareValue: 0.41, ShareWeight: 0.5, Members: members, Config: cfg,
		},
		&Gossip{From: members[1]},
		&GossipResult{Epoch: 4, ShareValue: 0.2, ShareWeight: 0.25, Members: members, Config: cfg},
		&GossipResult{},
		&IndexDelta{
			From: "10.0.0.1:7070", Threshold: 0.8, BaseSeq: 6, Seq: 7,
			Upserts: entries, Removed: []object.ID{"e", "f"},
		},
		&IndexDelta{From: "10.0.0.2:7070", Full: true, Seq: 1, Upserts: entries},
		&IndexDelta{},
		&IndexDeltaResult{AckSeq: 7, Missing: entries, Need: []object.ID{"c"}},
		&IndexDeltaResult{Resync: true},
		&IndexDeltaResult{},
		&Members{},
		&MembersResult{Members: members},
		&MembersResult{},
		&RepairStatus{},
		&RepairStatusResult{
			Replicas: 2, Threshold: 0.8, Pushed: 100, Pulled: 7,
			PushFailures: 1, Passes: 12, UnderReplicated: 3, Pending: 1,
			BytesRepaired: 1 << 20, LastPassNanos: int64(250 * time.Millisecond),
		},
	}
	for _, m := range tests {
		t.Run(m.Op().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if got.Op() != m.Op() {
				t.Fatalf("op = %v, want %v", got.Op(), m.Op())
			}
			a, err := Encode(m)
			if err != nil {
				t.Fatalf("re-encode original: %v", err)
			}
			b, err := Encode(got)
			if err != nil {
				t.Fatalf("re-encode decoded: %v", err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("round trip changed encoding:\n%v\n%v", a, b)
			}
		})
	}
}

func TestSupersedes(t *testing.T) {
	tests := []struct {
		aVer, bVer uint32
		aCRC, bCRC uint32
		want       bool
	}{
		{2, 1, 0, 9, true},  // higher version wins regardless of CRC
		{1, 2, 9, 0, false}, // lower version loses
		{1, 1, 5, 5, false}, // identical copies: neither supersedes
		{1, 1, 9, 5, true},  // divergent at equal version: higher CRC wins
		{1, 1, 5, 9, false}, // ... and the loser must agree
	}
	for _, tt := range tests {
		if got := Supersedes(tt.aVer, tt.bVer, tt.aCRC, tt.bCRC); got != tt.want {
			t.Errorf("Supersedes(v%d/c%d over v%d/c%d) = %v, want %v",
				tt.aVer, tt.aCRC, tt.bVer, tt.bCRC, got, tt.want)
		}
	}
}

// TestSupersedesConverges: for any two distinct copies, exactly one side
// supersedes -- the convergence property anti-entropy relies on.
func TestSupersedesConverges(t *testing.T) {
	versions := []uint32{0, 1, 2}
	crcs := []uint32{0, 7, 0xFFFFFFFF}
	for _, av := range versions {
		for _, bv := range versions {
			for _, ac := range crcs {
				for _, bc := range crcs {
					same := av == bv && ac == bc
					ab := Supersedes(av, bv, ac, bc)
					ba := Supersedes(bv, av, bc, ac)
					if same && (ab || ba) {
						t.Fatalf("identical copies supersede: v%d c%d", av, ac)
					}
					if !same && ab == ba {
						t.Fatalf("no winner between v%d/c%d and v%d/c%d", av, ac, bv, bc)
					}
				}
			}
		}
	}
}
