package wire

import (
	"errors"
	"reflect"
	"testing"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

func TestBatchRoundTrip(t *testing.T) {
	m := &Batch{Subs: []Message{
		&Put{ID: "a", Owner: "u", Class: object.ClassUniversity, Version: 1,
			Importance: importance.Constant{Level: 0.7}, Payload: []byte("bytes")},
		&Get{ID: "b"},
		&Delete{ID: "c"},
		&Stat{},
	}}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("batch round trip = %#v, want %#v", got, m)
	}
}

func TestBatchResultRoundTrip(t *testing.T) {
	m := &BatchResult{Results: []Message{
		&PutResult{Admitted: true, Boundary: 0.2, Evicted: []object.ID{"x"}},
		&ErrorMsg{Code: CodeDuplicate, Text: "b"},
		&OK{},
	}}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("batch result round trip = %#v, want %#v", got, m)
	}
}

func TestBatchRejectsEmpty(t *testing.T) {
	if _, err := Encode(&Batch{}); err == nil {
		t.Error("empty batch encoded")
	}
	// Crafted frame: opcode + count 0.
	if _, err := Decode([]byte{byte(OpBatch), 0, 0}); err == nil {
		t.Error("empty batch decoded")
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	inner := &Batch{Subs: []Message{&Stat{}}}
	if _, err := Encode(&Batch{Subs: []Message{inner}}); !errors.Is(err, ErrBatchNested) {
		t.Errorf("nested encode err = %v, want ErrBatchNested", err)
	}
	// Craft the nested frame by hand, since Encode refuses to produce it:
	// a batch whose single sub is itself a batch.
	innerBody, err := Encode(inner)
	if err != nil {
		t.Fatalf("Encode(inner): %v", err)
	}
	crafted := []byte{byte(OpBatch), 0, 1}
	crafted = appendBytes(crafted, innerBody)
	if _, err := Decode(crafted); !errors.Is(err, ErrBatchNested) {
		t.Errorf("nested decode err = %v, want ErrBatchNested", err)
	}
}

func TestBatchRejectsOversizedCount(t *testing.T) {
	// Count beyond MaxBatchSubs must be rejected before allocation.
	body := []byte{byte(OpBatch), 0xFF, 0xFF}
	if _, err := Decode(body); err == nil {
		t.Error("oversized batch count accepted")
	}
}

func TestBatchRejectsSubTrailingBytes(t *testing.T) {
	sub, err := Encode(&Stat{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	crafted := []byte{byte(OpBatch), 0, 1}
	crafted = appendBytes(crafted, append(sub, 0xEE))
	if _, err := Decode(crafted); err == nil {
		t.Error("sub with trailing bytes accepted")
	}
}

func TestSeqTrailerRoundTrip(t *testing.T) {
	body, err := Encode(&Get{ID: "x"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	body = AppendSeq(body, 12345)
	m, tr, err := DecodeWithTrailers(body)
	if err != nil {
		t.Fatalf("DecodeWithTrailers: %v", err)
	}
	if m.(*Get).ID != "x" {
		t.Errorf("message = %#v", m)
	}
	if !tr.HasSeq || tr.Seq != 12345 {
		t.Errorf("seq = %+v, want 12345", tr)
	}
	if tr.Trace != "" {
		t.Errorf("trace = %q, want empty", tr.Trace)
	}
}

func TestSeqZeroIsValid(t *testing.T) {
	body, _ := Encode(&Stat{})
	_, tr, err := DecodeWithTrailers(AppendSeq(body, 0))
	if err != nil || !tr.HasSeq || tr.Seq != 0 {
		t.Errorf("seq zero = %+v, %v; want HasSeq with Seq 0", tr, err)
	}
}

func TestTrailersInEitherOrder(t *testing.T) {
	base, _ := Encode(&Stat{})
	traceFirst := AppendSeq(AppendTraceID(base, "tr-1"), 7)
	seqFirst := AppendTraceID(AppendSeq(append([]byte(nil), base...), 9), "tr-2")
	for _, tc := range []struct {
		name  string
		body  []byte
		trace TraceID
		seq   uint64
	}{
		{"trace-then-seq", traceFirst, "tr-1", 7},
		{"seq-then-trace", seqFirst, "tr-2", 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, tr, err := DecodeWithTrailers(tc.body)
			if err != nil {
				t.Fatalf("DecodeWithTrailers: %v", err)
			}
			if tr.Trace != tc.trace || !tr.HasSeq || tr.Seq != tc.seq {
				t.Errorf("trailers = %+v, want trace %q seq %d", tr, tc.trace, tc.seq)
			}
		})
	}
}

func TestJunkAfterTrailersDiscardsAll(t *testing.T) {
	// One malformed byte after well-formed trailers must discard everything:
	// partially honored trailers would make the junk-suffix compatibility
	// contract ambiguous.
	body, _ := Encode(&Stat{})
	body = AppendTraceID(body, "tr")
	body = AppendSeq(body, 3)
	body = append(body, 0x00)
	m, tr, err := DecodeWithTrailers(body)
	if err != nil || m.Op() != OpStat {
		t.Fatalf("decode = %v, %v", m, err)
	}
	if tr.Trace != "" || tr.HasSeq {
		t.Errorf("trailers = %+v, want zero", tr)
	}
}

func TestTruncatedSeqTrailerDiscarded(t *testing.T) {
	body, _ := Encode(&Stat{})
	body = append(body, seqMagic, 1, 2, 3) // needs 8 bytes of sequence
	_, tr, err := DecodeWithTrailers(body)
	if err != nil || tr.HasSeq {
		t.Errorf("trailers = %+v, %v; want none", tr, err)
	}
}

func TestLegacyDecodeIgnoresSeqTrailer(t *testing.T) {
	body, _ := Encode(&Get{ID: "y"})
	m, err := Decode(AppendSeq(body, 1))
	if err != nil || m.(*Get).ID != "y" {
		t.Errorf("legacy decode = %v, %v", m, err)
	}
}
