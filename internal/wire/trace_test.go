package wire

import (
	"strings"
	"testing"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

func TestTraceTrailerRoundTrip(t *testing.T) {
	msgs := []Message{
		&Put{
			ID: "cs101/l1", Owner: "prof", Version: 1,
			Importance: importance.Constant{Level: 0.5},
			Payload:    []byte("bytes"),
		},
		&Stat{},
		&Get{ID: "x"},
		&PutResult{Admitted: true, Boundary: 0.25, Evicted: []object.ID{"a"}},
	}
	for _, msg := range msgs {
		body := mustEncode(t, msg)
		traced := AppendTraceID(body, "ab12-000017")
		m, id, err := DecodeTraced(traced)
		if err != nil {
			t.Fatalf("DecodeTraced(%v): %v", msg.Op(), err)
		}
		if id != "ab12-000017" {
			t.Errorf("%v: trace id = %q, want ab12-000017", msg.Op(), id)
		}
		if m.Op() != msg.Op() {
			t.Errorf("decoded op = %v, want %v", m.Op(), msg.Op())
		}
	}
}

// TestTraceTrailerBackwardCompatible is the compatibility contract: a peer
// that predates tracing (plain Decode) must parse a traced frame as if the
// trailer were not there.
func TestTraceTrailerBackwardCompatible(t *testing.T) {
	body := mustEncode(t, &Get{ID: "cs101/l1"})
	traced := AppendTraceID(body, "deadbeef-01")
	m, err := Decode(traced)
	if err != nil {
		t.Fatalf("legacy Decode of traced frame: %v", err)
	}
	g, ok := m.(*Get)
	if !ok || g.ID != "cs101/l1" {
		t.Errorf("legacy decode = %#v", m)
	}
}

func TestDecodeTracedWithoutTrailer(t *testing.T) {
	m, id, err := DecodeTraced(mustEncode(t, &Density{}))
	if err != nil {
		t.Fatalf("DecodeTraced: %v", err)
	}
	if id != "" {
		t.Errorf("untraced frame produced id %q", id)
	}
	if m.Op() != OpDensity {
		t.Errorf("op = %v", m.Op())
	}
}

func TestMalformedTrailerIgnored(t *testing.T) {
	body := mustEncode(t, &Stat{})
	cases := map[string][]byte{
		"bare magic":     append(append([]byte(nil), body...), traceMagic),
		"length overrun": append(append([]byte(nil), body...), traceMagic, 10, 'a'),
		"zero length":    append(append([]byte(nil), body...), traceMagic, 0),
		"wrong magic":    append(append([]byte(nil), body...), 0x55, 2, 'h', 'i'),
		"trailing junk":  append(append([]byte(nil), body...), traceMagic, 2, 'h', 'i', 'x'),
	}
	for name, buf := range cases {
		m, id, err := DecodeTraced(buf)
		if err != nil {
			t.Errorf("%s: DecodeTraced error: %v", name, err)
			continue
		}
		if id != "" {
			t.Errorf("%s: got trace id %q, want none", name, id)
		}
		if m == nil || m.Op() != OpStat {
			t.Errorf("%s: message = %v", name, m)
		}
	}
}

func TestAppendTraceIDBounds(t *testing.T) {
	body := mustEncode(t, &Stat{})
	if got := AppendTraceID(body, ""); len(got) != len(body) {
		t.Error("empty id grew the body")
	}
	long := TraceID(strings.Repeat("x", MaxTraceIDLen+1))
	if got := AppendTraceID(body, long); len(got) != len(body) {
		t.Error("oversized id was attached")
	}
	max := TraceID(strings.Repeat("y", MaxTraceIDLen))
	_, id, err := DecodeTraced(AppendTraceID(body, max))
	if err != nil || id != max {
		t.Errorf("max-length id round trip: id=%q err=%v", id, err)
	}
}

func TestDensityHistoryRoundTrip(t *testing.T) {
	if _, err := Decode(mustEncode(t, &DensityHistory{})); err != nil {
		t.Fatalf("DensityHistory: %v", err)
	}
	res := &DensityHistoryResult{Samples: []HistorySample{
		{AtNanos: 1e9, Density: 0.25, Used: 400, Boundary: 0},
		{AtNanos: 2e9, Density: 0.75, Used: 1000, Boundary: 0.5},
	}}
	m, err := Decode(mustEncode(t, res))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, ok := m.(*DensityHistoryResult)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if len(got.Samples) != 2 || got.Samples[1] != res.Samples[1] {
		t.Errorf("samples = %+v, want %+v", got.Samples, res.Samples)
	}
}

func TestDensityHistoryResultRejectsOversizedCount(t *testing.T) {
	// A claimed count the body cannot hold must fail before allocating.
	body := []byte{uint8(OpDensityHistoryResult), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Decode(body); err == nil {
		t.Error("oversized sample count decoded")
	}
}
