package wire

// Cluster messages: membership gossip, replication, and anti-entropy index
// exchange. A REPLICATE is a Put pushed node-to-node (answered by a
// PutResult); INDEX / INDEX_DIFF exchange per-node object summaries so the
// repair loop can detect under-replicated or divergent objects; GOSSIP
// carries one membership heartbeat plus a push-sum share for the
// cluster-wide density average; MEMBERS and REPAIR_STATUS are the
// operator-facing views.

import (
	"fmt"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

// Replicate pushes one object to a peer replica. The field layout matches
// Put with the object's server-side age appended, so the receiver can
// restore the original arrival time and the importance decays identically
// on every replica. Answered by a PutResult.
type Replicate struct {
	ID         object.ID
	Owner      string
	Class      object.Class
	Version    uint32
	Importance importance.Function
	// AgeNanos is the object's age on the sending node at encode time.
	AgeNanos int64
	Payload  []byte
}

// Op implements Message.
func (*Replicate) Op() Op { return OpReplicate }

// sizeHint: see Put.sizeHint.
func (m *Replicate) sizeHint() int {
	return 96 + len(m.ID) + len(m.Owner) + len(m.Payload)
}

func (m *Replicate) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpReplicate))
	dst, err := appendStr(dst, string(m.ID))
	if err != nil {
		return nil, err
	}
	if dst, err = appendStr(dst, m.Owner); err != nil {
		return nil, err
	}
	dst = appendU8(dst, uint8(m.Class))
	dst = appendU32(dst, m.Version)
	dst, err = appendImportance(dst, m.Importance)
	if err != nil {
		return nil, err
	}
	dst = appendU64(dst, uint64(m.AgeNanos))
	return appendBytes(dst, m.Payload), nil
}

func decodeReplicate(c *cursor) (Message, error) {
	m := &Replicate{}
	id, err := c.str()
	if err != nil {
		return nil, err
	}
	m.ID = object.ID(id)
	if m.Owner, err = c.str(); err != nil {
		return nil, err
	}
	class, err := c.u8()
	if err != nil {
		return nil, err
	}
	m.Class = object.Class(class)
	if m.Version, err = c.u32(); err != nil {
		return nil, err
	}
	impLen, err := c.u16()
	if err != nil {
		return nil, err
	}
	if len(c.rest()) < int(impLen) {
		return nil, ErrShort
	}
	f, consumed, err := importance.Decode(c.rest()[:impLen])
	if err != nil {
		return nil, err
	}
	if consumed != int(impLen) {
		return nil, fmt.Errorf("wire: importance encoding has %d trailing bytes", int(impLen)-consumed)
	}
	if err := c.advance(int(impLen)); err != nil {
		return nil, err
	}
	m.Importance = f
	age, err := c.u64()
	if err != nil {
		return nil, err
	}
	m.AgeNanos = int64(age)
	if m.Payload, err = c.bytes(); err != nil {
		return nil, err
	}
	return m, nil
}

// IndexEntry summarizes one resident object for anti-entropy comparison.
// Initial is the importance at age zero -- the replication threshold key
// and the repair ordering key. CRC detects divergent payloads at equal
// versions.
type IndexEntry struct {
	ID       object.ID
	Version  uint32
	CRC      uint32
	Size     int64
	Initial  float64
	AgeNanos int64
}

func appendIndexEntry(dst []byte, e IndexEntry) ([]byte, error) {
	dst, err := appendStr(dst, string(e.ID))
	if err != nil {
		return nil, err
	}
	dst = appendU32(dst, e.Version)
	dst = appendU32(dst, e.CRC)
	dst = appendU64(dst, uint64(e.Size))
	dst = appendF64(dst, e.Initial)
	dst = appendU64(dst, uint64(e.AgeNanos))
	return dst, nil
}

func decodeIndexEntry(c *cursor) (IndexEntry, error) {
	var e IndexEntry
	id, err := c.str()
	if err != nil {
		return e, err
	}
	e.ID = object.ID(id)
	if e.Version, err = c.u32(); err != nil {
		return e, err
	}
	if e.CRC, err = c.u32(); err != nil {
		return e, err
	}
	size, err := c.u64()
	if err != nil {
		return e, err
	}
	e.Size = int64(size)
	if e.Initial, err = c.f64(); err != nil {
		return e, err
	}
	age, err := c.u64()
	if err != nil {
		return e, err
	}
	e.AgeNanos = int64(age)
	return e, nil
}

func appendIndexEntries(dst []byte, entries []IndexEntry) ([]byte, error) {
	dst = appendU32(dst, uint32(len(entries)))
	var err error
	for _, e := range entries {
		if dst, err = appendIndexEntry(dst, e); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeIndexEntries(c *cursor) ([]IndexEntry, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	var entries []IndexEntry
	for i := 0; i < int(n); i++ {
		e, err := decodeIndexEntry(c)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Index requests the receiver's object index above an initial-importance
// threshold. Answered by an IndexResult.
type Index struct {
	// Threshold filters the index to objects whose initial importance is
	// at or above it; zero means every resident object.
	Threshold float64
}

// Op implements Message.
func (*Index) Op() Op { return OpIndex }

func (m *Index) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpIndex))
	return appendF64(dst, m.Threshold), nil
}

func decodeIndex(c *cursor) (Message, error) {
	m := &Index{}
	var err error
	if m.Threshold, err = c.f64(); err != nil {
		return nil, err
	}
	return m, nil
}

// IndexResult carries a node's object index.
type IndexResult struct {
	Entries []IndexEntry
}

// Op implements Message.
func (*IndexResult) Op() Op { return OpIndexResult }

func (m *IndexResult) sizeHint() int { return 16 + 64*len(m.Entries) }

func (m *IndexResult) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpIndexResult))
	return appendIndexEntries(dst, m.Entries)
}

func decodeIndexResult(c *cursor) (Message, error) {
	m := &IndexResult{}
	var err error
	if m.Entries, err = decodeIndexEntries(c); err != nil {
		return nil, err
	}
	return m, nil
}

// IndexDiff sends the caller's index so the receiver can report the
// difference: which of the receiver's objects the caller is missing and
// which of the caller's objects the receiver needs. Answered by an
// IndexDiffResult; an entry supersedes another when its version is higher,
// or versions are equal and the CRC differs (divergence, resolved by the
// higher CRC as an arbitrary but convergent tiebreak).
type IndexDiff struct {
	Threshold float64
	Entries   []IndexEntry
}

// Op implements Message.
func (*IndexDiff) Op() Op { return OpIndexDiff }

func (m *IndexDiff) sizeHint() int { return 16 + 64*len(m.Entries) }

func (m *IndexDiff) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpIndexDiff))
	dst = appendF64(dst, m.Threshold)
	return appendIndexEntries(dst, m.Entries)
}

func decodeIndexDiff(c *cursor) (Message, error) {
	m := &IndexDiff{}
	var err error
	if m.Threshold, err = c.f64(); err != nil {
		return nil, err
	}
	if m.Entries, err = decodeIndexEntries(c); err != nil {
		return nil, err
	}
	return m, nil
}

// IndexDiffResult reports both directions of an index comparison.
type IndexDiffResult struct {
	// Missing lists objects the receiver holds that the caller lacks or
	// holds a superseded copy of: candidates for the caller to pull.
	Missing []IndexEntry
	// Need lists IDs the caller advertised that the receiver lacks or
	// holds a superseded copy of.
	Need []object.ID
}

// Op implements Message.
func (*IndexDiffResult) Op() Op { return OpIndexDiffResult }

func (m *IndexDiffResult) sizeHint() int { return 16 + 64*len(m.Missing) + 32*len(m.Need) }

func (m *IndexDiffResult) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpIndexDiffResult))
	dst, err := appendIndexEntries(dst, m.Missing)
	if err != nil {
		return nil, err
	}
	dst = appendU32(dst, uint32(len(m.Need)))
	for _, id := range m.Need {
		if dst, err = appendStr(dst, string(id)); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeIndexDiffResult(c *cursor) (Message, error) {
	m := &IndexDiffResult{}
	var err error
	if m.Missing, err = decodeIndexEntries(c); err != nil {
		return nil, err
	}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(n); i++ {
		id, err := c.str()
		if err != nil {
			return nil, err
		}
		m.Need = append(m.Need, object.ID(id))
	}
	return m, nil
}

// IndexDelta is the incremental successor to IndexDiff: instead of
// resending the full above-threshold index every anti-entropy pass, the
// caller sends only the entries added, changed or removed since the
// receiver last acknowledged its sequence. Seq numbers the caller's
// snapshot generations per peer; BaseSeq is the generation the delta
// applies on top of. Full carries a complete snapshot (first contact, or
// recovery after a sequence gap). The receiver reconstructs the caller's
// index from its mirror, answers with the same Missing/Need comparison
// IndexDiff performs, and acknowledges Seq -- or asks for a resync when its
// mirror does not match BaseSeq (restart on either side, eviction of the
// mirror, or a changed threshold).
type IndexDelta struct {
	// From identifies the caller's mirror on the receiver (its serving
	// address, stable across connections).
	From      string
	Threshold float64
	BaseSeq   uint64
	Seq       uint64
	Full      bool
	// Upserts are entries added or superseded since BaseSeq (the whole
	// index when Full).
	Upserts []IndexEntry
	// Removed are IDs that dropped out of the above-threshold index.
	Removed []object.ID
}

// Op implements Message.
func (*IndexDelta) Op() Op { return OpIndexDelta }

func (m *IndexDelta) sizeHint() int { return 64 + 64*len(m.Upserts) + 32*len(m.Removed) }

func (m *IndexDelta) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpIndexDelta))
	dst, err := appendStr(dst, m.From)
	if err != nil {
		return nil, err
	}
	dst = appendF64(dst, m.Threshold)
	dst = appendU64(dst, m.BaseSeq)
	dst = appendU64(dst, m.Seq)
	dst = appendU8(dst, boolByte(m.Full))
	if dst, err = appendIndexEntries(dst, m.Upserts); err != nil {
		return nil, err
	}
	dst = appendU32(dst, uint32(len(m.Removed)))
	for _, id := range m.Removed {
		if dst, err = appendStr(dst, string(id)); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeIndexDelta(c *cursor) (Message, error) {
	m := &IndexDelta{}
	var err error
	if m.From, err = c.str(); err != nil {
		return nil, err
	}
	if m.Threshold, err = c.f64(); err != nil {
		return nil, err
	}
	if m.BaseSeq, err = c.u64(); err != nil {
		return nil, err
	}
	if m.Seq, err = c.u64(); err != nil {
		return nil, err
	}
	full, err := c.u8()
	if err != nil {
		return nil, err
	}
	m.Full = full != 0
	if m.Upserts, err = decodeIndexEntries(c); err != nil {
		return nil, err
	}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(n); i++ {
		id, err := c.str()
		if err != nil {
			return nil, err
		}
		m.Removed = append(m.Removed, object.ID(id))
	}
	return m, nil
}

// IndexDeltaResult answers an IndexDelta. When Resync is set the receiver
// could not apply the delta (sequence gap); the caller must resend Full and
// the comparison fields are empty. Otherwise AckSeq acknowledges the
// applied generation and Missing/Need carry the IndexDiff-style comparison
// against the receiver's own index.
type IndexDeltaResult struct {
	Resync bool
	AckSeq uint64
	// Missing lists objects the receiver holds that the caller lacks or
	// holds a superseded copy of: candidates for the caller to pull.
	Missing []IndexEntry
	// Need lists IDs the caller advertised that the receiver lacks or
	// holds a superseded copy of.
	Need []object.ID
}

// Op implements Message.
func (*IndexDeltaResult) Op() Op { return OpIndexDeltaResult }

func (m *IndexDeltaResult) sizeHint() int { return 32 + 64*len(m.Missing) + 32*len(m.Need) }

func (m *IndexDeltaResult) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpIndexDeltaResult))
	dst = appendU8(dst, boolByte(m.Resync))
	dst = appendU64(dst, m.AckSeq)
	dst, err := appendIndexEntries(dst, m.Missing)
	if err != nil {
		return nil, err
	}
	dst = appendU32(dst, uint32(len(m.Need)))
	for _, id := range m.Need {
		if dst, err = appendStr(dst, string(id)); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeIndexDeltaResult(c *cursor) (Message, error) {
	m := &IndexDeltaResult{}
	resync, err := c.u8()
	if err != nil {
		return nil, err
	}
	m.Resync = resync != 0
	if m.AckSeq, err = c.u64(); err != nil {
		return nil, err
	}
	if m.Missing, err = decodeIndexEntries(c); err != nil {
		return nil, err
	}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(n); i++ {
		id, err := c.str()
		if err != nil {
			return nil, err
		}
		m.Need = append(m.Need, object.ID(id))
	}
	return m, nil
}

// MemberInfo advertises one node's identity and placement state: its
// address, boot incarnation, per-incarnation version (bumped by the origin
// on every heartbeat, so staleness is totally ordered), the highest
// importance a put would currently preempt (the Section 5.3 placement key),
// free bytes, importance density, the node's TLS device ID (empty on
// cleartext clusters), and the cluster-config version it is enforcing.
type MemberInfo struct {
	Addr        string
	Incarnation uint64
	Version     uint64
	Boundary    float64
	Free        int64
	Density     float64
	Alive       bool
	// Device is the hex hash of the node's certificate public key; ""
	// when the node runs cleartext.
	Device string
	// ConfigVersion is the cluster-config version the node has adopted;
	// 0 means no opinion yet.
	ConfigVersion uint64
}

func appendMemberInfo(dst []byte, mi MemberInfo) ([]byte, error) {
	dst, err := appendStr(dst, mi.Addr)
	if err != nil {
		return nil, err
	}
	dst = appendU64(dst, mi.Incarnation)
	dst = appendU64(dst, mi.Version)
	dst = appendF64(dst, mi.Boundary)
	dst = appendU64(dst, uint64(mi.Free))
	dst = appendF64(dst, mi.Density)
	dst = appendU8(dst, boolByte(mi.Alive))
	if dst, err = appendStr(dst, mi.Device); err != nil {
		return nil, err
	}
	dst = appendU64(dst, mi.ConfigVersion)
	return dst, nil
}

func decodeMemberInfo(c *cursor) (MemberInfo, error) {
	var mi MemberInfo
	var err error
	if mi.Addr, err = c.str(); err != nil {
		return mi, err
	}
	if mi.Incarnation, err = c.u64(); err != nil {
		return mi, err
	}
	if mi.Version, err = c.u64(); err != nil {
		return mi, err
	}
	if mi.Boundary, err = c.f64(); err != nil {
		return mi, err
	}
	free, err := c.u64()
	if err != nil {
		return mi, err
	}
	mi.Free = int64(free)
	if mi.Density, err = c.f64(); err != nil {
		return mi, err
	}
	alive, err := c.u8()
	if err != nil {
		return mi, err
	}
	mi.Alive = alive != 0
	if mi.Device, err = c.str(); err != nil {
		return mi, err
	}
	if mi.ConfigVersion, err = c.u64(); err != nil {
		return mi, err
	}
	return mi, nil
}

func appendMemberInfos(dst []byte, members []MemberInfo) ([]byte, error) {
	dst = appendU16(dst, uint16(len(members)))
	var err error
	for _, mi := range members {
		if dst, err = appendMemberInfo(dst, mi); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeMemberInfos(c *cursor) ([]MemberInfo, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	var members []MemberInfo
	for i := 0; i < int(n); i++ {
		mi, err := decodeMemberInfo(c)
		if err != nil {
			return nil, err
		}
		members = append(members, mi)
	}
	return members, nil
}

// ClusterConfig is the versioned policy every replica must jointly enforce:
// replication factor R, the initial-importance replication threshold, and
// the gossip/repair cadences. Versions are monotonic and minted by the
// origin node; a node seeing a higher version adopts it, so the whole
// cluster converges to one policy instead of silently drifting on per-node
// flags. Version 0 means "no opinion": the zero value is both the
// wire-compatible default and the join-time stance of a node that defers to
// the cluster.
type ClusterConfig struct {
	Version uint64
	// Origin is the address of the node that minted this version.
	Origin string
	// Replicas is the replication factor R.
	Replicas uint32
	// Threshold is the initial-importance replication threshold.
	Threshold float64
	// GossipIntervalNanos and RepairIntervalNanos are the loop cadences;
	// carried for consistency checking, applied at restart.
	GossipIntervalNanos int64
	RepairIntervalNanos int64
}

// IsZero reports whether the config carries no opinion.
func (c ClusterConfig) IsZero() bool { return c.Version == 0 }

// SamePolicy reports whether two configs agree on the enforced policy
// (everything but the version bookkeeping).
func (c ClusterConfig) SamePolicy(o ClusterConfig) bool {
	return c.Replicas == o.Replicas && c.Threshold == o.Threshold &&
		c.GossipIntervalNanos == o.GossipIntervalNanos &&
		c.RepairIntervalNanos == o.RepairIntervalNanos
}

func appendClusterConfig(dst []byte, cc ClusterConfig) ([]byte, error) {
	dst = appendU64(dst, cc.Version)
	dst, err := appendStr(dst, cc.Origin)
	if err != nil {
		return nil, err
	}
	dst = appendU32(dst, cc.Replicas)
	dst = appendF64(dst, cc.Threshold)
	dst = appendU64(dst, uint64(cc.GossipIntervalNanos))
	dst = appendU64(dst, uint64(cc.RepairIntervalNanos))
	return dst, nil
}

func decodeClusterConfig(c *cursor) (ClusterConfig, error) {
	var cc ClusterConfig
	var err error
	if cc.Version, err = c.u64(); err != nil {
		return cc, err
	}
	if cc.Origin, err = c.str(); err != nil {
		return cc, err
	}
	if cc.Replicas, err = c.u32(); err != nil {
		return cc, err
	}
	if cc.Threshold, err = c.f64(); err != nil {
		return cc, err
	}
	gi, err := c.u64()
	if err != nil {
		return cc, err
	}
	cc.GossipIntervalNanos = int64(gi)
	ri, err := c.u64()
	if err != nil {
		return cc, err
	}
	cc.RepairIntervalNanos = int64(ri)
	return cc, nil
}

// Gossip carries one membership heartbeat: the sender's own advertisement,
// its view of the cluster, a push-sum share (Kempe et al.) for the
// cluster-wide density average, scoped to an epoch so restarts cannot leak
// mass forever, and the sender's cluster config so policy converges at the
// same cadence as membership. Answered by a GossipResult carrying the
// receiver's view and return share (push-pull), or by an Error with
// CodeConfigMismatch when the configs conflict at equal versions.
type Gossip struct {
	From        MemberInfo
	Epoch       uint64
	ShareValue  float64
	ShareWeight float64
	Members     []MemberInfo
	Config      ClusterConfig
}

// Op implements Message.
func (*Gossip) Op() Op { return OpGossip }

func (m *Gossip) sizeHint() int { return 160 + 80*(len(m.Members)+1) }

func (m *Gossip) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpGossip))
	dst, err := appendMemberInfo(dst, m.From)
	if err != nil {
		return nil, err
	}
	dst = appendU64(dst, m.Epoch)
	dst = appendF64(dst, m.ShareValue)
	dst = appendF64(dst, m.ShareWeight)
	if dst, err = appendMemberInfos(dst, m.Members); err != nil {
		return nil, err
	}
	return appendClusterConfig(dst, m.Config)
}

func decodeGossip(c *cursor) (Message, error) {
	m := &Gossip{}
	var err error
	if m.From, err = decodeMemberInfo(c); err != nil {
		return nil, err
	}
	if m.Epoch, err = c.u64(); err != nil {
		return nil, err
	}
	if m.ShareValue, err = c.f64(); err != nil {
		return nil, err
	}
	if m.ShareWeight, err = c.f64(); err != nil {
		return nil, err
	}
	if m.Members, err = decodeMemberInfos(c); err != nil {
		return nil, err
	}
	if m.Config, err = decodeClusterConfig(c); err != nil {
		return nil, err
	}
	return m, nil
}

// GossipResult answers a Gossip with the receiver's view, return share, and
// cluster config.
type GossipResult struct {
	Epoch       uint64
	ShareValue  float64
	ShareWeight float64
	Members     []MemberInfo
	Config      ClusterConfig
}

// Op implements Message.
func (*GossipResult) Op() Op { return OpGossipResult }

func (m *GossipResult) sizeHint() int { return 128 + 80*len(m.Members) }

func (m *GossipResult) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpGossipResult))
	dst = appendU64(dst, m.Epoch)
	dst = appendF64(dst, m.ShareValue)
	dst = appendF64(dst, m.ShareWeight)
	dst, err := appendMemberInfos(dst, m.Members)
	if err != nil {
		return nil, err
	}
	return appendClusterConfig(dst, m.Config)
}

func decodeGossipResult(c *cursor) (Message, error) {
	m := &GossipResult{}
	var err error
	if m.Epoch, err = c.u64(); err != nil {
		return nil, err
	}
	if m.ShareValue, err = c.f64(); err != nil {
		return nil, err
	}
	if m.ShareWeight, err = c.f64(); err != nil {
		return nil, err
	}
	if m.Members, err = decodeMemberInfos(c); err != nil {
		return nil, err
	}
	if m.Config, err = decodeClusterConfig(c); err != nil {
		return nil, err
	}
	return m, nil
}

// Members requests the receiver's membership table. Answered by a
// MembersResult; clients use it to discover the cluster from one seed.
type Members struct{}

// Op implements Message.
func (*Members) Op() Op { return OpMembers }

func (m *Members) append(dst []byte) ([]byte, error) {
	return appendU8(dst, uint8(OpMembers)), nil
}

// MembersResult carries the receiver's membership table.
type MembersResult struct {
	Members []MemberInfo
}

// Op implements Message.
func (*MembersResult) Op() Op { return OpMembersResult }

func (m *MembersResult) sizeHint() int { return 16 + 80*len(m.Members) }

func (m *MembersResult) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpMembersResult))
	return appendMemberInfos(dst, m.Members)
}

func decodeMembersResult(c *cursor) (Message, error) {
	m := &MembersResult{}
	var err error
	if m.Members, err = decodeMemberInfos(c); err != nil {
		return nil, err
	}
	return m, nil
}

// RepairStatus requests the receiver's anti-entropy repair counters.
// Answered by a RepairStatusResult.
type RepairStatus struct{}

// Op implements Message.
func (*RepairStatus) Op() Op { return OpRepairStatus }

func (m *RepairStatus) append(dst []byte) ([]byte, error) {
	return appendU8(dst, uint8(OpRepairStatus)), nil
}

// RepairStatusResult reports the repair loop's configuration and counters.
type RepairStatusResult struct {
	// Replicas is the configured replication factor R.
	Replicas uint32
	// Threshold is the initial-importance replication threshold.
	Threshold float64
	// Pushed counts objects pushed synchronously at ingest.
	Pushed uint64
	// Pulled counts objects pulled by anti-entropy passes.
	Pulled uint64
	// PushFailures counts failed ingest-time pushes.
	PushFailures uint64
	// Passes counts completed anti-entropy passes.
	Passes uint64
	// UnderReplicated is the deficit observed at the start of the most
	// recent pass (objects below replication factor R).
	UnderReplicated uint64
	// Pending is the deficit remaining after the most recent pass.
	Pending uint64
	// BytesRepaired counts payload bytes pulled by repair.
	BytesRepaired uint64
	// LastPassNanos is the wall-clock duration of the most recent pass.
	LastPassNanos int64
}

// Op implements Message.
func (*RepairStatusResult) Op() Op { return OpRepairStatusResult }

func (m *RepairStatusResult) append(dst []byte) ([]byte, error) {
	dst = appendU8(dst, uint8(OpRepairStatusResult))
	dst = appendU32(dst, m.Replicas)
	dst = appendF64(dst, m.Threshold)
	dst = appendU64(dst, m.Pushed)
	dst = appendU64(dst, m.Pulled)
	dst = appendU64(dst, m.PushFailures)
	dst = appendU64(dst, m.Passes)
	dst = appendU64(dst, m.UnderReplicated)
	dst = appendU64(dst, m.Pending)
	dst = appendU64(dst, m.BytesRepaired)
	dst = appendU64(dst, uint64(m.LastPassNanos))
	return dst, nil
}

func decodeRepairStatusResult(c *cursor) (Message, error) {
	m := &RepairStatusResult{}
	var err error
	if m.Replicas, err = c.u32(); err != nil {
		return nil, err
	}
	if m.Threshold, err = c.f64(); err != nil {
		return nil, err
	}
	if m.Pushed, err = c.u64(); err != nil {
		return nil, err
	}
	if m.Pulled, err = c.u64(); err != nil {
		return nil, err
	}
	if m.PushFailures, err = c.u64(); err != nil {
		return nil, err
	}
	if m.Passes, err = c.u64(); err != nil {
		return nil, err
	}
	if m.UnderReplicated, err = c.u64(); err != nil {
		return nil, err
	}
	if m.Pending, err = c.u64(); err != nil {
		return nil, err
	}
	if m.BytesRepaired, err = c.u64(); err != nil {
		return nil, err
	}
	last, err := c.u64()
	if err != nil {
		return nil, err
	}
	m.LastPassNanos = int64(last)
	return m, nil
}

// Supersedes reports whether version a at CRC aCRC supersedes version b at
// CRC bCRC: strictly newer version wins; at equal versions a differing CRC
// is divergence, resolved toward the higher CRC so every replica converges
// to the same copy without coordination.
func Supersedes(aVer, bVer uint32, aCRC, bCRC uint32) bool {
	if aVer != bVer {
		return aVer > bVer
	}
	return aCRC > bCRC
}
