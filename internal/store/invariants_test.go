package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

// TestInvariantRandomizedWorkload drives a unit with a random object stream
// and checks the paper's structural invariants after every operation:
//
//  1. used + free == capacity and both are non-negative;
//  2. the storage importance density stays in [0, 1];
//  3. an importance-one resident is never evicted by preemption;
//  4. every eviction preempts only objects whose current importance was
//     strictly below the preemptor's (or exactly zero);
//  5. rejected objects leave the unit untouched.
func TestInvariantRandomizedWorkload(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			arrivalsByID := make(map[object.ID]*object.Object)
			var evictions []Eviction
			u, err := New(10_000, policy.TemporalImportance{},
				WithEvictionHook(func(e Eviction) { evictions = append(evictions, e) }))
			if err != nil {
				t.Fatalf("New: %v", err)
			}

			now := time.Duration(0)
			for i := 0; i < 3000; i++ {
				now += time.Duration(rng.Intn(12)) * time.Hour
				var imp importance.Function
				switch rng.Intn(4) {
				case 0:
					imp = importance.Constant{Level: float64(rng.Intn(11)) / 10}
				case 1:
					imp = importance.Dirac{}
				default:
					imp = importance.TwoStep{
						Plateau: float64(1+rng.Intn(10)) / 10,
						Persist: time.Duration(rng.Intn(30)) * day,
						Wane:    time.Duration(rng.Intn(30)) * day,
					}
				}
				o, err := object.New(object.ID(fmt.Sprintf("o%05d", i)),
					int64(1+rng.Intn(3000)), now, imp)
				if err != nil {
					t.Fatalf("object.New: %v", err)
				}
				arrivalsByID[o.ID] = o

				beforeUsed, beforeLen := u.Used(), u.Len()
				evBefore := len(evictions)
				d, err := u.Put(o, now)
				if err != nil {
					t.Fatalf("Put %d: %v", i, err)
				}

				if u.Used()+u.Free() != u.Capacity() {
					t.Fatalf("step %d: used %d + free %d != capacity %d", i, u.Used(), u.Free(), u.Capacity())
				}
				if u.Used() < 0 || u.Free() < 0 {
					t.Fatalf("step %d: negative accounting", i)
				}
				if dens := u.DensityAt(now); dens < 0 || dens > 1+1e-9 {
					t.Fatalf("step %d: density %v out of range", i, dens)
				}
				if !d.Admit {
					if u.Used() != beforeUsed || u.Len() != beforeLen || len(evictions) != evBefore {
						t.Fatalf("step %d: rejection mutated the unit", i)
					}
					continue
				}
				incomingImp := o.ImportanceAt(now)
				for _, e := range evictions[evBefore:] {
					if e.PreemptedBy != o.ID {
						t.Fatalf("step %d: eviction attributed to %s, want %s", i, e.PreemptedBy, o.ID)
					}
					if e.Importance == 1 {
						t.Fatalf("step %d: importance-one object %s was preempted", i, e.Object.ID)
					}
					if e.Importance != 0 && e.Importance >= incomingImp {
						t.Fatalf("step %d: victim at %v preempted by arrival at %v",
							i, e.Importance, incomingImp)
					}
					if want := e.Time - e.Object.Arrival; e.LifetimeAchieved != want {
						t.Fatalf("step %d: lifetime achieved %v, want %v", i, e.LifetimeAchieved, want)
					}
				}
			}

			// Cross-check: every eviction corresponds to a real arrival and
			// no evicted object is still resident.
			for _, e := range evictions {
				if _, ok := arrivalsByID[e.Object.ID]; !ok {
					t.Fatalf("eviction of unknown object %s", e.Object.ID)
				}
				if _, err := u.Get(e.Object.ID); err == nil {
					t.Fatalf("evicted object %s still resident", e.Object.ID)
				}
			}
		})
	}
}

// TestConcurrentAccess exercises the unit from many goroutines under the
// race detector: puts, probes, reads and density queries must be safe.
func TestConcurrentAccess(t *testing.T) {
	u, err := New(1_000_000, policy.TemporalImportance{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				now := time.Duration(i) * time.Hour
				id := object.ID(fmt.Sprintf("w%d-o%d", w, i))
				o, err := object.New(id, int64(1+rng.Intn(5000)), now,
					importance.TwoStep{Plateau: rng.Float64(), Persist: day, Wane: day})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := u.Put(o, now); err != nil {
					t.Error(err)
					return
				}
				u.Probe(o, now)
				u.DensityAt(now)
				u.ByteImportance(now)
				_, _ = u.Get(id)
				if i%10 == 9 {
					_ = u.Delete(id)
				}
			}
		}()
	}
	wg.Wait()
	if u.Used()+u.Free() != u.Capacity() {
		t.Errorf("used %d + free %d != capacity %d", u.Used(), u.Free(), u.Capacity())
	}
}
