package store

import (
	"errors"
	"testing"

	"besteffs/internal/importance"
	"besteffs/internal/policy"
)

func TestRejuvenateExtendsLifetime(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	o := mkObj(t, "video", 500, 0, importance.TwoStep{Plateau: 1, Persist: 10 * day, Wane: 10 * day})
	if _, err := u.Put(o, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Deep in the wane the object is at 0.25 importance.
	now := 15 * day
	got, err := u.Get("video")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if imp := got.ImportanceAt(now); imp != 0.5 {
		t.Fatalf("pre-rejuvenation importance = %v, want 0.5", imp)
	}

	fresh, err := u.Rejuvenate("video", importance.TwoStep{Plateau: 1, Persist: 30 * day, Wane: 0}, now)
	if err != nil {
		t.Fatalf("Rejuvenate: %v", err)
	}
	if fresh.Version != 2 {
		t.Errorf("version = %d, want 2", fresh.Version)
	}
	if fresh.Arrival != now {
		t.Errorf("arrival = %v, want re-aged from %v", fresh.Arrival, now)
	}
	if imp := fresh.ImportanceAt(now); imp != 1 {
		t.Errorf("post-rejuvenation importance = %v, want 1", imp)
	}
	// The resident set serves the new version.
	again, err := u.Get("video")
	if err != nil {
		t.Fatalf("Get after rejuvenate: %v", err)
	}
	if again.Version != 2 || again.ImportanceAt(now+20*day) != 1 {
		t.Errorf("resident after rejuvenate = %+v", again)
	}
	// Accounting is untouched: same bytes, same count.
	if u.Used() != 500 || u.Len() != 1 {
		t.Errorf("Used/Len = %d/%d, want 500/1", u.Used(), u.Len())
	}
}

func TestRejuvenateDemotion(t *testing.T) {
	// The paper's backup scenario: the object is critical until a backup
	// succeeds, then demoted so it competes like any cache entry.
	u := newUnit(t, 1000, policy.TemporalImportance{})
	o := mkObj(t, "roadtrip", 1000, 0, importance.Constant{Level: 1})
	if _, err := u.Put(o, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// While critical, nothing can displace it.
	in := mkObj(t, "in", 500, day, importance.Constant{Level: 0.9})
	if d, err := u.Put(in, day); err != nil || d.Admit {
		t.Fatalf("pre-demotion Put = %+v, %v; want rejection", d, err)
	}
	if _, err := u.Rejuvenate("roadtrip", importance.Constant{Level: 0.1}, day); err != nil {
		t.Fatalf("Rejuvenate: %v", err)
	}
	retry := mkObj(t, "in2", 500, 2*day, importance.Constant{Level: 0.9})
	d, err := u.Put(retry, 2*day)
	if err != nil || !d.Admit {
		t.Fatalf("post-demotion Put = %+v, %v; want admission", d, err)
	}
	if len(d.Victims) != 1 || d.Victims[0].ID != "roadtrip" {
		t.Errorf("victims = %v, want the demoted object", d.Victims)
	}
}

func TestRejuvenateErrors(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Rejuvenate("missing", importance.Constant{Level: 1}, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object err = %v, want ErrNotFound", err)
	}
	o := mkObj(t, "x", 10, 0, importance.Constant{Level: 1})
	if _, err := u.Put(o, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := u.Rejuvenate("x", nil, 0); err == nil {
		t.Error("nil importance accepted")
	}
	if _, err := u.Rejuvenate("x", importance.Dirac{}, 0); !errors.Is(err, ErrRejuvenateExpired) {
		t.Errorf("expired replacement err = %v, want ErrRejuvenateExpired", err)
	}
	// The resident is unchanged after failed attempts.
	got, err := u.Get("x")
	if err != nil || got.Version != 1 {
		t.Errorf("resident after failed rejuvenations = %+v, %v", got, err)
	}
}
