package store

import (
	"fmt"

	"besteffs/internal/object"
)

// Checkpoint support. A unit's durable state is exactly its resident set:
// each object's (size, arrival, importance function) tuple is everything
// the paper's reclamation decisions consume, so serializing the residents
// -- importance functions included -- and loading them into a fresh unit
// reproduces every future admission, eviction and density reading. The
// byte-level checkpoint format lives in internal/journal (it reuses the
// journal's record codec); this file provides the unit's side: a
// consistent snapshot out, a validated bulk load back in.

// Snapshot returns the resident objects as a consistent point-in-time
// snapshot, sorted by ID. Objects are immutable once resident (rejuvenation
// and update replace the pointer), so the returned values stay valid while
// the unit keeps mutating.
func (u *Unit) Snapshot() []*object.Object {
	return u.Residents()
}

// LoadSnapshot bulk-restores a checkpoint's objects into an empty unit,
// bypassing the admission policy -- the admissions already happened in a
// previous life and the snapshot guarantees they fit. It fails if the unit
// already holds residents (a snapshot is a base image, not a merge) or if
// the snapshot exceeds capacity.
func (u *Unit) LoadSnapshot(objs []*object.Object) error {
	if n := u.Len(); n != 0 {
		return fmt.Errorf("store: LoadSnapshot into a unit with %d residents", n)
	}
	for _, o := range objs {
		if err := u.Restore(o); err != nil {
			return fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	return nil
}
