package store

import (
	"errors"
	"testing"

	"besteffs/internal/importance"
	"besteffs/internal/policy"
)

func TestUpdateReplacesVersion(t *testing.T) {
	var evictions []Eviction
	u := newUnit(t, 1000, policy.TemporalImportance{},
		WithEvictionHook(func(e Eviction) { evictions = append(evictions, e) }))
	v1 := mkObj(t, "doc", 400, 0, importance.Constant{Level: 0.5})
	if _, err := u.Put(v1, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}

	v2 := mkObj(t, "doc", 600, day, importance.Constant{Level: 0.8})
	d, err := u.Update(v2, day)
	if err != nil || !d.Admit {
		t.Fatalf("Update = %+v, %v", d, err)
	}
	got, err := u.Get("doc")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Version != 2 || got.Size != 600 || got.ImportanceAt(day) != 0.8 {
		t.Errorf("updated object = %+v", got)
	}
	if u.Used() != 600 || u.Len() != 1 {
		t.Errorf("Used/Len = %d/%d, want 600/1", u.Used(), u.Len())
	}
	// The superseded version is reported, attributed to its own ID.
	if len(evictions) != 1 || evictions[0].Object.Version != 1 || evictions[0].PreemptedBy != "doc" {
		t.Errorf("evictions = %+v", evictions)
	}
}

func TestUpdateCountsOldBytesAsFree(t *testing.T) {
	// Unit is byte-full with the old version plus an importance-one
	// neighbor; the update fits exactly because the old version's bytes
	// are reclaimable by right.
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Put(mkObj(t, "pinned", 500, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := u.Put(mkObj(t, "doc", 500, 0, importance.Constant{Level: 0.5}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	d, err := u.Update(mkObj(t, "doc", 500, day, importance.Constant{Level: 0.5}), day)
	if err != nil || !d.Admit {
		t.Fatalf("same-size update = %+v, %v", d, err)
	}
	// A larger update cannot fit: the only other resident is pinned.
	d, err = u.Update(mkObj(t, "doc", 600, 2*day, importance.Constant{Level: 0.5}), 2*day)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if d.Admit || d.Reason != policy.ReasonFull {
		t.Fatalf("oversized update = %+v, want ReasonFull", d)
	}
	// The rejection left version 2 intact.
	got, err := u.Get("doc")
	if err != nil || got.Version != 2 || got.Size != 500 {
		t.Errorf("after rejected update: %+v, %v", got, err)
	}
}

func TestUpdatePreemptsForExtraSpace(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Put(mkObj(t, "cheap", 500, 0, importance.Constant{Level: 0.1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := u.Put(mkObj(t, "doc", 500, 0, importance.Constant{Level: 0.5}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Growing the doc to 800 requires preempting the cheap object too.
	d, err := u.Update(mkObj(t, "doc", 800, day, importance.Constant{Level: 0.5}), day)
	if err != nil || !d.Admit {
		t.Fatalf("Update = %+v, %v", d, err)
	}
	if len(d.Victims) != 1 || d.Victims[0].ID != "cheap" {
		t.Errorf("victims = %v, want [cheap]", d.Victims)
	}
	if u.Used() != 800 || u.Len() != 1 {
		t.Errorf("Used/Len = %d/%d, want 800/1", u.Used(), u.Len())
	}
}

func TestUpdateErrors(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Update(nil, 0); err == nil {
		t.Error("nil object accepted")
	}
	if _, err := u.Update(mkObj(t, "ghost", 10, 0, importance.Constant{Level: 1}), 0); !errors.Is(err, ErrNotResident) {
		t.Errorf("absent target err = %v, want ErrNotResident", err)
	}
}
