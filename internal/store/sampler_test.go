package store

import (
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

func TestSampleAt(t *testing.T) {
	u, err := New(1000, policy.TemporalImportance{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	put := func(id object.ID, size int64, level float64) {
		t.Helper()
		o, err := object.New(id, size, 0, importance.Constant{Level: level})
		if err != nil {
			t.Fatalf("object.New: %v", err)
		}
		if d, err := u.Put(o, 0); err != nil || !d.Admit {
			t.Fatalf("Put %s: admit=%v err=%v", id, d.Admit, err)
		}
	}
	put("a", 400, 0.5)

	s := u.SampleAt(0)
	if s.Density != 0.2 { // 400 bytes at 0.5 over 1000
		t.Errorf("density = %v, want 0.2", s.Density)
	}
	if s.Used != 400 {
		t.Errorf("used = %d, want 400", s.Used)
	}
	if s.Boundary != 0 {
		t.Errorf("boundary = %v, want 0 while free space remains", s.Boundary)
	}

	// Fill the unit; the boundary becomes the cheapest resident's
	// current importance.
	put("b", 600, 0.8)
	s = u.SampleAt(0)
	if s.Used != 1000 {
		t.Errorf("used = %d, want 1000", s.Used)
	}
	if s.Boundary != 0.5 {
		t.Errorf("boundary = %v, want 0.5 (cheapest resident)", s.Boundary)
	}
	if got := u.BoundaryAt(0); got != 0.5 {
		t.Errorf("BoundaryAt = %v, want 0.5", got)
	}
}

func TestSampleAtTracksAging(t *testing.T) {
	u, err := New(1000, policy.TemporalImportance{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Linear decay from 1 to 0 over 10 days.
	o, err := object.New("a", 1000, 0, importance.Linear{Start: 1, Expire: 10 * importance.Day})
	if err != nil {
		t.Fatalf("object.New: %v", err)
	}
	if _, err := u.Put(o, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s0 := u.SampleAt(0)
	s5 := u.SampleAt(5 * importance.Day)
	if s0.Density != 1 {
		t.Errorf("density at 0 = %v, want 1", s0.Density)
	}
	if s5.Density != 0.5 {
		t.Errorf("density at day 5 = %v, want 0.5", s5.Density)
	}
	if s5.Boundary != 0.5 {
		t.Errorf("boundary at day 5 = %v, want 0.5", s5.Boundary)
	}
}

func TestDensityRingWraps(t *testing.T) {
	r := NewDensityRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 1; i <= 5; i++ {
		r.Record(DensitySample{At: time.Duration(i), Density: float64(i) / 10})
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
	got := r.Samples()
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3", len(got))
	}
	// Oldest first: samples 3, 4, 5 survive the wrap.
	for i, want := range []time.Duration{3, 4, 5} {
		if got[i].At != want {
			t.Errorf("sample %d at = %v, want %v (all: %+v)", i, got[i].At, want, got)
		}
	}
}

func TestDensityRingPartial(t *testing.T) {
	r := NewDensityRing(8)
	r.Record(DensitySample{At: 1})
	r.Record(DensitySample{At: 2})
	got := r.Samples()
	if len(got) != 2 || got[0].At != 1 || got[1].At != 2 {
		t.Errorf("samples = %+v", got)
	}
	// Size is clamped to at least one slot.
	tiny := NewDensityRing(0)
	tiny.Record(DensitySample{At: 9})
	if tiny.Len() != 1 || tiny.Samples()[0].At != 9 {
		t.Errorf("clamped ring: len=%d samples=%+v", tiny.Len(), tiny.Samples())
	}
}
