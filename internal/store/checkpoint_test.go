package store

import (
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/journal"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

// newUnit builds a test unit that journals its history into recs, the way
// the live server does (puts and rejuvenations recorded by the caller,
// evictions by the hook).
func newJournaledUnit(t *testing.T, recs *[]journal.Record) *Unit {
	t.Helper()
	u, err := New(10_000, policy.TemporalImportance{},
		WithEvictionHook(func(e Eviction) {
			*recs = append(*recs, journal.Record{
				Kind: journal.KindEvict, At: e.Time, ID: e.Object.ID,
			})
		}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return u
}

func mustPut(t *testing.T, u *Unit, recs *[]journal.Record, id string, size int64, now time.Duration, imp importance.Function) {
	t.Helper()
	o, err := object.New(object.ID(id), size, now, imp)
	if err != nil {
		t.Fatalf("object.New %s: %v", id, err)
	}
	d, err := u.Put(o, now)
	if err != nil {
		t.Fatalf("Put %s: %v", id, err)
	}
	if !d.Admit {
		t.Fatalf("Put %s rejected", id)
	}
	*recs = append(*recs, journal.ObjectRecord(o))
}

// replayInto applies journal records to a fresh unit the way server
// recovery does: puts restore, evicts remove, rejuvenations re-annotate.
func replayInto(t *testing.T, u *Unit, recs []journal.Record) {
	t.Helper()
	for i, r := range recs {
		switch r.Kind {
		case journal.KindPut:
			o, err := r.Object()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if err := u.Restore(o); err != nil {
				t.Fatalf("record %d restore: %v", i, err)
			}
		case journal.KindEvict, journal.KindDelete:
			if err := u.Remove(r.ID); err != nil {
				t.Fatalf("record %d remove: %v", i, err)
			}
		case journal.KindRejuvenate:
			if _, err := u.Rejuvenate(r.ID, r.Importance, r.At); err != nil {
				t.Fatalf("record %d rejuvenate: %v", i, err)
			}
		}
	}
}

// TestRejuvenateSurvivesCheckpointRoundTrip: a rejuvenated object's fresh
// importance function -- and its re-aged arrival -- must come back intact
// from a checkpoint written after the rejuvenation.
func TestRejuvenateSurvivesCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var recs []journal.Record
	u := newJournaledUnit(t, &recs)
	day := importance.Day
	mustPut(t, u, &recs, "keep", 1000, 0,
		importance.TwoStep{Plateau: 1, Persist: 5 * day, Wane: 5 * day})
	mustPut(t, u, &recs, "renew", 2000, time.Hour,
		importance.TwoStep{Plateau: 0.8, Persist: 2 * day, Wane: day})

	// Rejuvenate at day 3: new annotation ages from the rejuvenation
	// instant, version bumps.
	rejAt := 3 * day
	fresh, err := u.Rejuvenate("renew", importance.Constant{Level: 0.4}, rejAt)
	if err != nil {
		t.Fatalf("Rejuvenate: %v", err)
	}
	if fresh.Version != 2 || fresh.Arrival != rejAt {
		t.Fatalf("rejuvenated = v%d arrival %v, want v2 arrival %v", fresh.Version, fresh.Arrival, rejAt)
	}

	// Checkpoint the live state, then load it into a brand-new unit.
	snap := u.Snapshot()
	cp := journal.Checkpoint{CoversSeq: 1, Resume: rejAt}
	for _, o := range snap {
		cp.Objects = append(cp.Objects, journal.ObjectRecord(o))
	}
	if err := journal.WriteCheckpoint(dir, cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	loaded, _, err := journal.LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadLatestCheckpoint: %v", err)
	}
	u2 := newJournaledUnit(t, new([]journal.Record))
	objs := make([]*object.Object, 0, len(loaded.Objects))
	for _, r := range loaded.Objects {
		o, err := r.Object()
		if err != nil {
			t.Fatalf("checkpoint object: %v", err)
		}
		objs = append(objs, o)
	}
	if err := u2.LoadSnapshot(objs); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}

	got, err := u2.Get("renew")
	if err != nil {
		t.Fatalf("Get renew: %v", err)
	}
	if got.Version != 2 || got.Arrival != rejAt {
		t.Errorf("restored renew = v%d arrival %v, want v2 arrival %v", got.Version, got.Arrival, rejAt)
	}
	// The replacement function, not the original, must answer importance
	// queries: constant 0.4 regardless of age, where the original TwoStep
	// would be deep into its wane.
	for _, now := range []time.Duration{rejAt, rejAt + 10*day, rejAt + 100*day} {
		if imp := got.ImportanceAt(now); imp != 0.4 {
			t.Errorf("restored renew importance at %v = %v, want 0.4", now, imp)
		}
	}
	if kept, err := u2.Get("keep"); err != nil || kept.Version != 1 {
		t.Errorf("untouched object changed: %v, %v", kept, err)
	}
	if u2.Used() != u.Used() || u2.Len() != u.Len() {
		t.Errorf("restored unit = %d bytes / %d objects, want %d / %d",
			u2.Used(), u2.Len(), u.Used(), u.Len())
	}
}

// TestUpdateSurvivesCheckpointThenReplay covers the interleaving recovery
// actually faces: a checkpoint holding the pre-update state plus journal
// records for the update (self-eviction + new put) and a later
// rejuvenation. Replaying the tail over the checkpoint must land on the
// updated version with the rejuvenated importance intact.
func TestUpdateSurvivesCheckpointThenReplay(t *testing.T) {
	var recs []journal.Record
	u := newJournaledUnit(t, &recs)
	day := importance.Day
	mustPut(t, u, &recs, "doc", 1000, 0,
		importance.TwoStep{Plateau: 0.9, Persist: 10 * day, Wane: 10 * day})

	// Checkpoint now: everything so far is covered; recs from here on are
	// the post-checkpoint tail.
	snap := u.Snapshot()
	cp := journal.Checkpoint{CoversSeq: 1, Resume: 0}
	for _, o := range snap {
		cp.Objects = append(cp.Objects, journal.ObjectRecord(o))
	}
	tailStart := len(recs)

	// Update at hour 2: new bytes, version 2. The store reports the old
	// version through the eviction hook (self-preemption), and the server
	// journals the new version as a put -- mirror that here.
	newObj, err := object.New("doc", 1500, 2*time.Hour, importance.Constant{Level: 0.7})
	if err != nil {
		t.Fatalf("object.New: %v", err)
	}
	d, err := u.Update(newObj, 2*time.Hour)
	if err != nil || !d.Admit {
		t.Fatalf("Update = %+v, %v", d, err)
	}
	cur, err := u.Get("doc")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if cur.Version != 2 {
		t.Fatalf("updated version = %d, want 2", cur.Version)
	}
	recs = append(recs, journal.ObjectRecord(cur))

	// Rejuvenate the updated object at hour 5.
	if _, err := u.Rejuvenate("doc", importance.Constant{Level: 0.2}, 5*time.Hour); err != nil {
		t.Fatalf("Rejuvenate: %v", err)
	}
	recs = append(recs, journal.Record{
		Kind: journal.KindRejuvenate, At: 5 * time.Hour, ID: "doc",
		Importance: importance.Constant{Level: 0.2},
	})

	// Recovery: load the checkpoint, then replay the tail records.
	u2 := newJournaledUnit(t, new([]journal.Record))
	objs := make([]*object.Object, 0, len(cp.Objects))
	for _, r := range cp.Objects {
		o, err := r.Object()
		if err != nil {
			t.Fatalf("checkpoint object: %v", err)
		}
		objs = append(objs, o)
	}
	if err := u2.LoadSnapshot(objs); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	replayInto(t, u2, recs[tailStart:])

	got, err := u2.Get("doc")
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	// v1 -> v2 by the update, -> v3 by the rejuvenation.
	if got.Version != 3 || got.Size != 1500 {
		t.Errorf("recovered doc = v%d %dB, want v3 1500B", got.Version, got.Size)
	}
	if imp := got.ImportanceAt(100 * importance.Day); imp != 0.2 {
		t.Errorf("recovered importance = %v, want the rejuvenated 0.2", imp)
	}
	if u2.Used() != u.Used() || u2.Len() != u.Len() {
		t.Errorf("recovered unit = %d bytes / %d objects, want %d / %d",
			u2.Used(), u2.Len(), u.Used(), u.Len())
	}
}
