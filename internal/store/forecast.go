package store

import (
	"errors"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/metrics"
	"besteffs/internal/object"
)

// Forecasting exploits the determinism of temporal annotations: every
// resident's future importance is known exactly, so absent new arrivals
// the density trajectory is computable, not predicted. Section 5.1.3:
// "The application can decide at the outset the kinds of behavior it
// requires and whether the storage can provide such behavior." A creator
// can ask "when will the density fall below my object's importance?" and
// schedule the write for that moment.

// ErrBadForecast reports invalid forecast parameters.
var ErrBadForecast = errors.New("store: bad forecast parameters")

// ForecastDensity returns the density trajectory over [now, now+horizon]
// at the given step, assuming no further arrivals or deletions: the exact
// decay of the current resident set.
func (u *Unit) ForecastDensity(now, horizon, step time.Duration) ([]metrics.Point, error) {
	if horizon <= 0 || step <= 0 {
		return nil, ErrBadForecast
	}
	u.mu.Lock()
	objs := append(u.order[:0:0], u.order...)
	u.mu.Unlock()

	var out []metrics.Point
	for t := now; t <= now+horizon; t += step {
		weighted := 0.0
		for _, o := range objs {
			weighted += o.WeightedImportance(t)
		}
		out = append(out, metrics.Point{T: t, V: weighted / float64(u.capacity)})
	}
	return out, nil
}

// AdmissibleAt returns the earliest time in [now, now+horizon] at which an
// object of the given size and importance level would be admitted, assuming
// no further arrivals. The second return value is false if the unit stays
// full for the object across the whole horizon. The probe evaluates the
// policy against the aged resident set at each step.
func (u *Unit) AdmissibleAt(size int64, level float64, now, horizon, step time.Duration) (time.Duration, bool, error) {
	if horizon <= 0 || step <= 0 {
		return 0, false, ErrBadForecast
	}
	if size <= 0 || level < 0 || level > 1 {
		return 0, false, ErrBadForecast
	}
	probe, err := object.New("forecast-probe", size, now, importance.Constant{Level: level})
	if err != nil {
		return 0, false, err
	}
	for t := now; t <= now+horizon; t += step {
		// Re-arrive the probe at each instant so its importance is the
		// plateau level, not a decayed value.
		probe.Arrival = t
		if d := u.Probe(probe, t); d.Admit {
			return t, true, nil
		}
	}
	return 0, false, nil
}
