package store

import (
	"sync"
	"time"
)

// DensitySample is one point on a unit's density trajectory: the live
// counterpart of the simulated density time series the paper's figures
// plot. An operator (or client library) watches the trajectory to predict
// the importance level at which the unit will "appear full".
type DensitySample struct {
	// At is the unit's virtual time of the sample.
	At time.Duration
	// Density is the storage importance density at that time (Section
	// 5.1.2): every stored byte scaled by its current importance, over
	// capacity.
	Density float64
	// Used is the allocated bytes at that time.
	Used int64
	// Boundary is the importance boundary at that time: the importance
	// level an arrival must exceed to claim the unit's next byte. Zero
	// while free space remains; the lowest current importance among
	// residents once the unit is full.
	Boundary float64
}

// SampleAt captures the unit's density, usage and importance boundary in
// one lock pass -- the sampling primitive behind WithDensitySampling and
// the /metrics gauges.
func (u *Unit) SampleAt(now time.Duration) DensitySample {
	u.mu.Lock()
	defer u.mu.Unlock()
	weighted := 0.0
	minImp, haveMin := 0.0, false
	for _, o := range u.order {
		imp := o.ImportanceAt(now)
		weighted += float64(o.Size) * imp
		if !haveMin || imp < minImp {
			minImp, haveMin = imp, true
		}
	}
	boundary := 0.0
	if u.free <= 0 && haveMin {
		boundary = minImp
	}
	return DensitySample{
		At:       now,
		Density:  weighted / float64(u.capacity),
		Used:     u.capacity - u.free,
		Boundary: boundary,
	}
}

// BoundaryAt returns the instantaneous importance boundary (see
// DensitySample.Boundary).
func (u *Unit) BoundaryAt(now time.Duration) float64 {
	return u.SampleAt(now).Boundary
}

// DensityRing is a fixed-capacity ring buffer of density samples, safe for
// concurrent use. Once full, each new sample displaces the oldest, so the
// ring always holds the most recent window of the trajectory.
type DensityRing struct {
	mu   sync.Mutex
	buf  []DensitySample
	next int
	full bool
}

// NewDensityRing returns a ring holding up to size samples (minimum 1).
func NewDensityRing(size int) *DensityRing {
	if size < 1 {
		size = 1
	}
	return &DensityRing{buf: make([]DensitySample, size)}
}

// Record appends one sample, displacing the oldest when full.
func (r *DensityRing) Record(s DensitySample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of recorded samples (at most the ring's capacity).
func (r *DensityRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring's capacity.
//
//lint:ignore lockdiscipline the buf slice header is immutable after NewDensityRing; len needs no lock
func (r *DensityRing) Cap() int { return len(r.buf) }

// Samples returns the recorded window, oldest first.
func (r *DensityRing) Samples() []DensitySample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]DensitySample(nil), r.buf[:r.next]...)
	}
	out := make([]DensitySample, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
