package store

import (
	"errors"
	"fmt"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

// Rejuvenation implements the paper's escape hatch from monotonicity.
// Lifetime functions must be monotonically decreasing (Section 3): a
// creator cannot pre-program a future importance increase, because the
// increase would be conditioned on the object surviving until then. What
// the paper allows instead is "an active intervention by the user to
// increase an existing importance in the future" -- the video-upload
// example where a backup application lowers an object's importance once a
// copy exists, and the Section 6 trigger scenarios (sensor data demoted
// after processing, importance raised on an acknowledgment).
//
// Rejuvenate replaces a resident object's importance function now, re-aging
// it from the rejuvenation instant. The object's version increments
// (Besteffs updates are versioned), its ID and payload are unchanged.

// ErrRejuvenateExpired reports a rejuvenation that would not change
// anything because the replacement function is already expired.
var ErrRejuvenateExpired = errors.New("store: replacement importance already expired")

// Rejuvenate replaces the importance annotation of a resident object with
// a fresh function whose age restarts at now. It returns the updated
// object. Lowering importance is allowed (the backup-completed case) as
// well as raising it (the renewed-interest case); what cannot happen is an
// automatic, pre-programmed increase.
func (u *Unit) Rejuvenate(id object.ID, imp importance.Function, now time.Duration) (*object.Object, error) {
	if imp == nil {
		return nil, object.ErrNilImportance
	}
	if importance.Expired(imp, 0) {
		return nil, fmt.Errorf("%w: %v", ErrRejuvenateExpired, imp)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old, ok := u.residents[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// Objects are write-once with versioned updates: build the successor
	// version in place of the old one. Arrival moves to now so the new
	// function ages from the rejuvenation instant.
	fresh := *old
	fresh.Importance = imp
	fresh.Arrival = now
	fresh.Version = old.Version + 1
	u.residents[id] = &fresh
	for i, r := range u.order {
		if r.ID == id {
			u.order[i] = &fresh
			break
		}
	}
	return &fresh, nil
}
