package store

// Engine shards one node's byte budget over N independent Units so admission
// on a multi-core box contends on N locks instead of one. Each shard owns a
// slice of the capacity and its own resident set; the Engine routes object
// IDs to shards and re-merges the per-shard measurement surfaces (density,
// importance boundary, byte-importance samples) into the node-level view the
// server, status JSON and gossip advertisements consume. The paper's
// importance boundary is a per-partition signal that aggregates upward: a
// node's boundary is the cheapest of its shards' boundaries, exactly the
// quantity Section 5.3 placement minimizes across units -- the Engine just
// applies the same heuristic one level down.
//
// A single-shard Engine is byte-for-byte the old one-Unit layout; sharding
// is opt-in via EngineConfig.Shards.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"besteffs/internal/object"
	"besteffs/internal/policy"
	"besteffs/internal/stats"
)

// Placement selects how the Engine routes new object IDs to shards.
type Placement int

const (
	// PlacementHash routes by fnv-64a of the object ID: deterministic
	// across restarts and processes, no cross-shard probes.
	PlacementHash Placement = iota
	// PlacementBoundary applies the paper's Section 5.3 lowest-preempted
	// heuristic locally: two hash-derived candidate shards are probed and
	// the object is placed where admission preempts the least importance.
	// Lookups check both candidates.
	PlacementBoundary
)

// EngineConfig sizes an Engine. The zero Shards and Placement values mean
// one shard and hash routing, preserving the pre-sharding behaviour.
type EngineConfig struct {
	// Shards is the number of in-process shards (0 or 1 = unsharded).
	Shards int
	// Capacity is the node's total byte budget, split evenly over shards.
	Capacity int64
	// Policy is the admission policy, shared by every shard.
	Policy policy.Policy
	// Placement selects the routing strategy (default PlacementHash).
	Placement Placement
}

// Engine errors.
var (
	// ErrBadShards reports a negative shard count or a capacity too small
	// to give every shard at least one byte.
	ErrBadShards = errors.New("store: shard count must be >= 1 and <= capacity")
)

// Engine routes object IDs over a fixed set of Unit shards and presents the
// merged node-level view. The shard set is immutable after NewEngine; all
// mutability lives in the Units, so the Engine itself needs no lock.
type Engine struct {
	shards    []*Unit
	placement Placement
	capacity  int64
	pol       policy.Policy
}

// NewEngine builds an engine of cfg.Shards units splitting cfg.Capacity.
// shardOpts, when non-nil, supplies per-shard Unit options (the server uses
// it to bind each shard's eviction hook to that shard's WAL); it is invoked
// once per shard index.
func NewEngine(cfg EngineConfig, shardOpts func(shard int) []Option) (*Engine, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 0 || int64(n) > cfg.Capacity {
		return nil, fmt.Errorf("%w: %d shards over %d bytes", ErrBadShards, n, cfg.Capacity)
	}
	e := &Engine{
		shards:    make([]*Unit, n),
		placement: cfg.Placement,
		capacity:  cfg.Capacity,
		pol:       cfg.Policy,
	}
	base, rem := cfg.Capacity/int64(n), cfg.Capacity%int64(n)
	for i := range e.shards {
		capacity := base
		if int64(i) < rem {
			capacity++
		}
		opts := []Option{WithName(fmt.Sprintf("shard-%03d", i))}
		if shardOpts != nil {
			opts = append(opts, shardOpts(i)...)
		}
		u, err := New(capacity, cfg.Policy, opts...)
		if err != nil {
			return nil, err
		}
		e.shards[i] = u
	}
	return e, nil
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Shard returns shard i's Unit.
func (e *Engine) Shard(i int) *Unit { return e.shards[i] }

// Policy returns the shared admission policy.
func (e *Engine) Policy() policy.Policy { return e.pol }

// Capacity returns the node's total byte budget.
func (e *Engine) Capacity() int64 { return e.capacity }

// shardHash is fnv-64a over the ID bytes, inlined to keep routing
// allocation-free on the put hot path.
//
//besteffs:hotpath-ok pure arithmetic over the ID bytes
func shardHash(id object.ID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// Home returns the ID's primary shard index: fnv-64a mod shard count. It is
// a pure function of the ID and the shard count, so the same key routes to
// the same shard across restarts and across processes.
func (e *Engine) Home(id object.ID) int {
	return int(shardHash(id) % uint64(len(e.shards)))
}

// alt returns the ID's secondary candidate shard for boundary placement,
// derived from independent bits of the same hash and never equal to Home.
func (e *Engine) alt(id object.ID) int {
	n := uint64(len(e.shards))
	home := int(shardHash(id) % n)
	a := int((shardHash(id) >> 23) % n)
	if a == home {
		a = (a + 1) % int(n)
	}
	return a
}

// Place chooses the shard a new object should be admitted to. Hash
// placement returns the home shard. Boundary placement probes the two
// candidate shards with the object and picks the one whose admission plan
// preempts the lowest importance (ties and rejections fall back to home) --
// the Section 5.3 lowest-preempted heuristic applied across shards.
//
//besteffs:hotpath-ok hash routing is pure arithmetic; boundary mode's two probes are that placement's documented cost
func (e *Engine) Place(o *object.Object, now time.Duration) int {
	home := e.Home(o.ID)
	if e.placement != PlacementBoundary || len(e.shards) == 1 {
		return home
	}
	alt := e.alt(o.ID)
	dh := e.shards[home].Probe(o, now)
	da := e.shards[alt].Probe(o, now)
	if da.Admit && (!dh.Admit || da.HighestPreempted < dh.HighestPreempted) {
		return alt
	}
	return home
}

// ProbeBest plans admission of a hypothetical object against every shard
// without mutating anything and returns the most favorable decision: the
// admitting shard preempting the lowest importance, or -- when no shard
// admits -- the rejection with the lowest boundary. It answers the node
// -level PROBE question ("what would it cost to store this here?") the
// Section 5.3 placement asks, before the object's real ID decides its
// shard.
func (e *Engine) ProbeBest(o *object.Object, now time.Duration) policy.Decision {
	best := e.shards[0].Probe(o, now)
	for _, u := range e.shards[1:] {
		d := u.Probe(o, now)
		if (d.Admit && !best.Admit) ||
			(d.Admit == best.Admit && d.HighestPreempted < best.HighestPreempted) {
			best = d
		}
	}
	return best
}

// Locate returns the shard index holding id, or the home shard (resident ==
// false) when no shard does. Hash placement only ever checks the home
// shard; boundary placement also checks the alternate candidate.
func (e *Engine) Locate(id object.ID) (shard int, resident bool) {
	home := e.Home(id)
	if _, err := e.shards[home].Get(id); err == nil {
		return home, true
	}
	if e.placement == PlacementBoundary && len(e.shards) > 1 {
		alt := e.alt(id)
		if _, err := e.shards[alt].Get(id); err == nil {
			return alt, true
		}
	}
	return home, false
}

// Get returns the resident object with the given ID from whichever shard
// holds it.
func (e *Engine) Get(id object.ID) (*object.Object, error) {
	idx, ok := e.Locate(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return e.shards[idx].Get(id)
}

// Used returns the allocated bytes summed over shards.
func (e *Engine) Used() int64 {
	var used int64
	for _, u := range e.shards {
		used += u.Used()
	}
	return used
}

// Free returns the unallocated bytes summed over shards.
func (e *Engine) Free() int64 {
	var free int64
	for _, u := range e.shards {
		free += u.Free()
	}
	return free
}

// Len returns the resident object count summed over shards.
func (e *Engine) Len() int {
	n := 0
	for _, u := range e.shards {
		n += u.Len()
	}
	return n
}

// CountersSnapshot returns the activity counters summed over shards.
func (e *Engine) CountersSnapshot() Counters {
	var c Counters
	for _, u := range e.shards {
		s := u.CountersSnapshot()
		c.Admitted += s.Admitted
		c.Rejected += s.Rejected
		c.Evicted += s.Evicted
		c.Deleted += s.Deleted
		c.AdmittedBytes += s.AdmittedBytes
		c.EvictedBytes += s.EvictedBytes
	}
	return c
}

// DensityAt returns the node-level storage importance density: every stored
// byte scaled by its current importance over the TOTAL capacity, identical
// to the unsharded definition because density is capacity-weighted.
func (e *Engine) DensityAt(now time.Duration) float64 {
	weighted := 0.0
	for _, u := range e.shards {
		weighted += u.DensityAt(now) * float64(u.Capacity())
	}
	return weighted / float64(e.capacity)
}

// SampleAt captures the merged node-level density sample: density is the
// capacity-weighted merge, usage the sum, and the boundary the cheapest
// shard boundary -- zero while any shard still has free bytes, since an
// arrival routed there pays no preemption.
func (e *Engine) SampleAt(now time.Duration) DensitySample {
	merged := DensitySample{At: now}
	weighted := 0.0
	anyRoom := false
	haveBoundary := false
	for _, u := range e.shards {
		s := u.SampleAt(now)
		weighted += s.Density * float64(u.Capacity())
		merged.Used += s.Used
		if s.Boundary == 0 {
			// A shard with room (or no residents) keeps the node boundary
			// at zero regardless of its siblings.
			anyRoom = true
			continue
		}
		if !haveBoundary || s.Boundary < merged.Boundary {
			merged.Boundary, haveBoundary = s.Boundary, true
		}
	}
	if anyRoom {
		merged.Boundary = 0
	}
	merged.Density = weighted / float64(e.capacity)
	return merged
}

// BoundaryAt returns the merged importance boundary (see SampleAt).
func (e *Engine) BoundaryAt(now time.Duration) float64 {
	return e.SampleAt(now).Boundary
}

// Residents returns a snapshot of every shard's residents merged and sorted
// by ID, matching the unsharded Residents contract.
func (e *Engine) Residents() []*object.Object {
	if len(e.shards) == 1 {
		return e.shards[0].Residents()
	}
	var out []*object.Object
	for _, u := range e.shards {
		out = append(out, u.Residents()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByteImportance returns the merged per-resident weighted samples (the
// Figure 7 CDF raw material) across all shards.
func (e *Engine) ByteImportance(now time.Duration) []stats.WeightedSample {
	if len(e.shards) == 1 {
		return e.shards[0].ByteImportance(now)
	}
	var out []stats.WeightedSample
	for _, u := range e.shards {
		out = append(out, u.ByteImportance(now)...)
	}
	return out
}
