package store

import (
	"errors"
	"testing"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

func batchObj(t *testing.T, id object.ID, size int64, level float64) *object.Object {
	t.Helper()
	o, err := object.New(id, size, 0, importance.Constant{Level: level})
	if err != nil {
		t.Fatalf("object.New(%s): %v", id, err)
	}
	return o
}

func TestPutBatchAdmitsAndEvictsLikeSequentialPuts(t *testing.T) {
	var evicted []object.ID
	u, err := New(1000, policy.TemporalImportance{},
		WithEvictionHook(func(e Eviction) { evicted = append(evicted, e.Object.ID) }))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := u.Put(batchObj(t, "old", 600, 0.1), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	out := u.PutBatch([]*object.Object{
		batchObj(t, "a", 400, 0.5), // fits free space
		batchObj(t, "b", 600, 0.9), // preempts old
	}, 0)
	if out[0].Err != nil || !out[0].Decision.Admit {
		t.Fatalf("a = %+v", out[0])
	}
	if out[1].Err != nil || !out[1].Decision.Admit {
		t.Fatalf("b = %+v", out[1])
	}
	if len(evicted) != 1 || evicted[0] != "old" {
		t.Errorf("evicted = %v, want [old]", evicted)
	}
	if u.Len() != 2 || u.Used() != 1000 {
		t.Errorf("len=%d used=%d, want 2/1000", u.Len(), u.Used())
	}
	c := u.CountersSnapshot()
	if c.Admitted != 3 || c.Evicted != 1 || c.Rejected != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPutBatchDuplicatesFailIndividually(t *testing.T) {
	u, err := New(1000, policy.TemporalImportance{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := u.Put(batchObj(t, "resident", 100, 0.5), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	out := u.PutBatch([]*object.Object{
		batchObj(t, "resident", 100, 0.5), // duplicate of a resident
		batchObj(t, "twin", 100, 0.5),
		batchObj(t, "twin", 100, 0.5), // duplicate within the batch
		nil,
		batchObj(t, "ok", 100, 0.5),
	}, 0)
	if !errors.Is(out[0].Err, ErrDuplicateID) {
		t.Errorf("resident dup err = %v", out[0].Err)
	}
	if out[1].Err != nil || !out[1].Decision.Admit {
		t.Errorf("first twin = %+v", out[1])
	}
	if !errors.Is(out[2].Err, ErrDuplicateID) {
		t.Errorf("batch dup err = %v", out[2].Err)
	}
	if out[3].Err == nil {
		t.Error("nil object accepted")
	}
	if out[4].Err != nil || !out[4].Decision.Admit {
		t.Errorf("ok = %+v", out[4])
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d, want 3 (resident, twin, ok)", u.Len())
	}
}

func TestPutBatchRejectionHooksFire(t *testing.T) {
	var rejected []object.ID
	u, err := New(500, policy.TemporalImportance{},
		WithRejectionHook(func(r Rejection) { rejected = append(rejected, r.Object.ID) }))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out := u.PutBatch([]*object.Object{
		batchObj(t, "a", 500, 0.5),
		batchObj(t, "crowded-out", 500, 0.9), // sibling holds the space
	}, 0)
	if !out[0].Decision.Admit {
		t.Fatalf("a = %+v", out[0])
	}
	if out[1].Decision.Admit {
		t.Fatalf("crowded-out admitted over its sibling: %+v", out[1])
	}
	if len(rejected) != 1 || rejected[0] != "crowded-out" {
		t.Errorf("rejection hooks = %v", rejected)
	}
	if c := u.CountersSnapshot(); c.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", c.Rejected)
	}
}

func TestPutBatchFallbackPolicy(t *testing.T) {
	// FIFO has no PlanBatch; the sequential fallback must still deliver
	// group semantics through PutBatch.
	u, err := New(1000, policy.FIFO{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := u.Put(batchObj(t, "old", 1000, 0.1), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	out := u.PutBatch([]*object.Object{
		batchObj(t, "a", 1000, 0.5), // preempts old
		batchObj(t, "b", 1000, 0.5), // would need to preempt its sibling
	}, 0)
	if out[0].Err != nil || !out[0].Decision.Admit {
		t.Fatalf("a = %+v", out[0])
	}
	if out[1].Decision.Admit {
		t.Errorf("b admitted over its sibling: %+v", out[1])
	}
	if u.Len() != 1 {
		t.Errorf("Len = %d, want 1", u.Len())
	}
}
