package store

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

// fillUnit builds a unit with n random two-step residents under light
// pressure.
func fillUnit(b *testing.B, n int) (*Unit, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	u, err := New(int64(n)*1000, policy.TemporalImportance{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		o, err := object.New(object.ID(fmt.Sprintf("seed/%06d", i)),
			int64(500+rng.Intn(500)), time.Duration(rng.Intn(100))*day,
			importance.TwoStep{
				Plateau: rng.Float64(),
				Persist: time.Duration(rng.Intn(30)) * day,
				Wane:    time.Duration(rng.Intn(60)) * day,
			})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := u.Put(o, 100*day); err != nil {
			b.Fatal(err)
		}
	}
	return u, rng
}

// BenchmarkPutUnderPressure measures admission with preemption on units of
// increasing resident counts (the per-arrival cost of the paper's sort-and
// -preempt algorithm).
func BenchmarkPutUnderPressure(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("residents=%d", n), func(b *testing.B) {
			u, rng := fillUnit(b, n)
			now := 100 * day
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += time.Minute
				o, err := object.New(object.ID(fmt.Sprintf("bench/%09d", i)),
					int64(500+rng.Intn(500)), now,
					importance.TwoStep{Plateau: 0.9, Persist: 10 * day, Wane: 10 * day})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := u.Put(o, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProbe measures the non-mutating placement probe.
func BenchmarkProbe(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("residents=%d", n), func(b *testing.B) {
			u, _ := fillUnit(b, n)
			o, err := object.New("probe", 1000, 100*day, importance.Constant{Level: 0.9})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u.Probe(o, 100*day)
			}
		})
	}
}

// BenchmarkDensityAt measures the density computation that every probe
// interval pays.
func BenchmarkDensityAt(b *testing.B) {
	u, _ := fillUnit(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.DensityAt(time.Duration(i) * time.Minute)
	}
}

// BenchmarkByteImportance measures the Figure 7 snapshot path.
func BenchmarkByteImportance(b *testing.B) {
	u, _ := fillUnit(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.ByteImportance(100 * day)
	}
}
