// Package store implements a single Besteffs storage unit: a byte-capacity
// budget, the resident object set, policy-driven admission with preemption,
// and the measurement surface the paper's evaluation is built on -- the
// storage importance density (Section 5.1.2), byte-importance snapshots
// (Figure 7), achieved-lifetime records (Figures 3 and 9), importance at
// reclamation (Figure 10) and rejection counts (Figure 4).
//
// A Unit is safe for concurrent use; the network server and the
// single-threaded simulator share this implementation.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"besteffs/internal/object"
	"besteffs/internal/policy"
	"besteffs/internal/stats"
)

// Unit errors.
var (
	// ErrBadCapacity reports a non-positive capacity.
	ErrBadCapacity = errors.New("store: capacity must be positive")
	// ErrNilPolicy reports a missing policy.
	ErrNilPolicy = errors.New("store: nil policy")
	// ErrDuplicateID reports a Put of an ID that is already resident.
	// Besteffs objects are write-once; updates use new versioned IDs.
	ErrDuplicateID = errors.New("store: duplicate object ID")
	// ErrNotFound reports a lookup of an absent object.
	ErrNotFound = errors.New("store: object not found")
)

// Eviction records one reclaimed object. LifetimeAchieved is the paper's
// headline per-object metric: lifetimes are "measured when objects are
// evicted".
type Eviction struct {
	// Object is the evicted resident.
	Object *object.Object
	// Time is the virtual time of the eviction.
	Time time.Duration
	// LifetimeAchieved is Time minus the object's arrival.
	LifetimeAchieved time.Duration
	// Importance is the object's current importance when reclaimed
	// (Figure 10).
	Importance float64
	// PreemptedBy names the incoming object that forced the eviction;
	// empty for explicit deletes.
	PreemptedBy object.ID
}

// Rejection records one object the unit was full for (Figure 4).
type Rejection struct {
	// Object is the rejected arrival.
	Object *object.Object
	// Time is the virtual time of the attempt.
	Time time.Duration
	// Boundary is the importance level that blocked admission: the
	// cheapest victim the plan would have needed.
	Boundary float64
	// Reason is the policy's rejection reason.
	Reason policy.Reason
}

// Counters aggregates unit activity.
type Counters struct {
	Admitted, Rejected, Evicted, Deleted int64
	AdmittedBytes, EvictedBytes          int64
}

// Unit is one storage unit.
type Unit struct {
	name     string
	capacity int64
	pol      policy.Policy

	onEvict  func(Eviction)
	onReject func(Rejection)
	onAdmit  func(*object.Object, time.Duration)

	mu        sync.Mutex
	free      int64
	residents map[object.ID]*object.Object
	order     []*object.Object // unordered compact slice of residents
	counters  Counters
}

// Option configures a Unit.
type Option func(*Unit)

// WithName sets a human-readable unit name for reports.
func WithName(name string) Option {
	return func(u *Unit) { u.name = name }
}

// WithEvictionHook installs a callback invoked for every eviction, after
// the unit's state is updated but while the unit lock is held; hooks must
// not call back into the Unit.
func WithEvictionHook(fn func(Eviction)) Option {
	return func(u *Unit) { u.onEvict = fn }
}

// WithRejectionHook installs a callback invoked for every rejection under
// the same constraints as WithEvictionHook.
func WithRejectionHook(fn func(Rejection)) Option {
	return func(u *Unit) { u.onReject = fn }
}

// WithAdmissionHook installs a callback invoked for every admission under
// the same constraints as WithEvictionHook.
func WithAdmissionHook(fn func(*object.Object, time.Duration)) Option {
	return func(u *Unit) { u.onAdmit = fn }
}

// New builds a unit of the given byte capacity governed by the policy.
func New(capacity int64, pol policy.Policy, opts ...Option) (*Unit, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	if pol == nil {
		return nil, ErrNilPolicy
	}
	u := &Unit{
		name:      "unit",
		capacity:  capacity,
		pol:       pol,
		free:      capacity,
		residents: make(map[object.ID]*object.Object),
	}
	for _, opt := range opts {
		opt(u)
	}
	return u, nil
}

// Name returns the unit's name.
func (u *Unit) Name() string { return u.name }

// Capacity returns the unit's total byte capacity.
func (u *Unit) Capacity() int64 { return u.capacity }

// Policy returns the unit's admission policy.
func (u *Unit) Policy() policy.Policy { return u.pol }

// Free returns the currently unallocated bytes.
func (u *Unit) Free() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.free
}

// Used returns the currently allocated bytes.
func (u *Unit) Used() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.capacity - u.free
}

// Len returns the number of resident objects.
func (u *Unit) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.order)
}

// CountersSnapshot returns a copy of the activity counters.
func (u *Unit) CountersSnapshot() Counters {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.counters
}

// viewLocked builds a policy view over the LIVE resident slice -- no copy.
// Policies borrow Residents read-only for the duration of Plan (the
// policy.View contract), and every caller holds u.mu across the Plan call,
// so the slice cannot change underneath the policy. Skipping the copy keeps
// admission O(1) when free space suffices; the old per-put copy dominated
// put throughput on large units.
func (u *Unit) viewLocked() policy.View {
	return policy.View{
		Capacity:  u.capacity,
		Free:      u.free,
		Residents: u.order,
	}
}

// Put offers an object to the unit at virtual time now. On admission the
// returned decision lists the evicted victims; on rejection Admit is false
// and Reason explains why. Put fails with ErrDuplicateID if the ID is
// already resident.
func (u *Unit) Put(o *object.Object, now time.Duration) (policy.Decision, error) {
	if o == nil {
		return policy.Decision{}, errors.New("store: nil object")
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.residents[o.ID]; ok {
		return policy.Decision{}, fmt.Errorf("%w: %s", ErrDuplicateID, o.ID)
	}
	d := u.pol.Plan(u.viewLocked(), o, now)
	if !d.Admit {
		u.counters.Rejected++
		if u.onReject != nil {
			u.onReject(Rejection{Object: o, Time: now, Boundary: d.HighestPreempted, Reason: d.Reason})
		}
		return d, nil
	}
	for _, victim := range d.Victims {
		u.evictLocked(victim, now, o.ID)
	}
	u.residents[o.ID] = o
	u.order = append(u.order, o)
	u.free -= o.Size
	u.counters.Admitted++
	u.counters.AdmittedBytes += o.Size
	if u.onAdmit != nil {
		u.onAdmit(o, now)
	}
	return d, nil
}

// BatchOutcome is the per-object result of PutBatch: the admission plan
// that was executed, or the per-object error that kept the object out of
// planning (nil object, duplicate ID).
type BatchOutcome struct {
	// Decision is the executed admission plan; zero when Err is set.
	Decision policy.Decision
	// Err reports a per-object failure. A failed object never fails the
	// group: its neighbours are planned as if it were absent.
	Err error
}

// PutBatch offers a group of objects for storage under ONE lock acquisition
// and ONE policy view snapshot, instead of N locked re-plans. Group
// semantics come from policy.PlanGroup: members never preempt each other,
// and no resident is evicted twice. Eviction, rejection and admission hooks
// fire exactly as they would for the equivalent sequence of Puts.
//
//besteffs:hotpath-ok the group admission transaction: verdict slices, the policy plan and eviction hooks are its output
func (u *Unit) PutBatch(objs []*object.Object, now time.Duration) []BatchOutcome {
	out := make([]BatchOutcome, len(objs))
	u.mu.Lock()
	defer u.mu.Unlock()
	// Validate per object: duplicates (already resident, or repeated within
	// the batch) and nils fail individually, never the group.
	seen := make(map[object.ID]bool, len(objs))
	plan := make([]*object.Object, len(objs))
	for k, o := range objs {
		switch {
		case o == nil:
			out[k].Err = errors.New("store: nil object")
		case u.residents[o.ID] != nil:
			out[k].Err = fmt.Errorf("%w: %s", ErrDuplicateID, o.ID)
		case seen[o.ID]:
			out[k].Err = fmt.Errorf("%w: %s (earlier in batch)", ErrDuplicateID, o.ID)
		default:
			seen[o.ID] = true
			plan[k] = o
		}
	}
	decisions := policy.PlanGroup(u.pol, u.viewLocked(), plan, now)
	for k, o := range plan {
		if o == nil {
			continue
		}
		d := decisions[k]
		out[k].Decision = d
		if !d.Admit {
			u.counters.Rejected++
			if u.onReject != nil {
				u.onReject(Rejection{Object: o, Time: now, Boundary: d.HighestPreempted, Reason: d.Reason})
			}
			continue
		}
		for _, victim := range d.Victims {
			if u.residents[victim.ID] == nil {
				// Defensive: a planner violating the no-double-eviction
				// contract must not corrupt free-space accounting.
				continue
			}
			u.evictLocked(victim, now, o.ID)
		}
		u.residents[o.ID] = o
		u.order = append(u.order, o)
		u.free -= o.Size
		u.counters.Admitted++
		u.counters.AdmittedBytes += o.Size
		if u.onAdmit != nil {
			u.onAdmit(o, now)
		}
	}
	return out
}

// ErrOverCapacity reports a Restore that would exceed the unit's capacity.
var ErrOverCapacity = errors.New("store: restore exceeds capacity")

// Restore inserts an object unconditionally, bypassing the admission
// policy and all hooks. It exists for journal replay, where the admission
// already happened in a previous process and the history guarantees the
// object fits. Restore fails on a duplicate ID or insufficient free space.
func (u *Unit) Restore(o *object.Object) error {
	if o == nil {
		return errors.New("store: nil object")
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.residents[o.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, o.ID)
	}
	if o.Size > u.free {
		return fmt.Errorf("%w: %s needs %d, %d free", ErrOverCapacity, o.ID, o.Size, u.free)
	}
	u.residents[o.ID] = o
	u.order = append(u.order, o)
	u.free -= o.Size
	return nil
}

// Remove unlinks an object without hooks or counters, for journal replay of
// recorded deletes and evictions.
func (u *Unit) Remove(id object.ID) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	o, ok := u.residents[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	u.removeLocked(o)
	return nil
}

// Probe plans admission of a hypothetical object without mutating the unit.
// It returns the policy decision, whose HighestPreempted field is the
// importance boundary distributed placement minimizes across units.
func (u *Unit) Probe(o *object.Object, now time.Duration) policy.Decision {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.pol.Plan(u.viewLocked(), o, now)
}

// Get returns the resident object with the given ID.
func (u *Unit) Get(id object.ID) (*object.Object, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	o, ok := u.residents[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return o, nil
}

// Delete explicitly removes an object (the content creator's prerogative;
// no eviction record is produced).
//
//besteffs:hotpath-ok index mutation off the steady-state admit path (explicit deletes, rollbacks)
func (u *Unit) Delete(id object.ID) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	o, ok := u.residents[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	u.removeLocked(o)
	u.counters.Deleted++
	return nil
}

// DropExpired reclaims every resident whose importance has reached zero.
// The system never promises availability past expiry, but absent pressure
// expired objects linger; DropExpired is the maintenance sweep for callers
// that want the space back eagerly. It returns the number of objects
// reclaimed.
func (u *Unit) DropExpired(now time.Duration) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	var victims []*object.Object
	for _, o := range u.order {
		if o.Expired(now) {
			victims = append(victims, o)
		}
	}
	for _, o := range victims {
		u.evictLocked(o, now, "")
	}
	return len(victims)
}

// evictLocked removes a resident and records the eviction.
func (u *Unit) evictLocked(o *object.Object, now time.Duration, by object.ID) {
	u.removeLocked(o)
	u.counters.Evicted++
	u.counters.EvictedBytes += o.Size
	if u.onEvict != nil {
		u.onEvict(Eviction{
			Object:           o,
			Time:             now,
			LifetimeAchieved: o.Age(now),
			Importance:       o.ImportanceAt(now),
			PreemptedBy:      by,
		})
	}
}

// removeLocked unlinks o from the resident set and returns its bytes.
func (u *Unit) removeLocked(o *object.Object) {
	delete(u.residents, o.ID)
	for i, r := range u.order {
		if r.ID == o.ID {
			last := len(u.order) - 1
			u.order[i] = u.order[last]
			u.order[last] = nil
			u.order = u.order[:last]
			break
		}
	}
	u.free += o.Size
}

// Residents returns a snapshot of the resident objects, sorted by ID for
// deterministic iteration.
func (u *Unit) Residents() []*object.Object {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := append([]*object.Object(nil), u.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DensityAt returns the instantaneous storage importance density at now:
// every stored byte scaled by its current importance, divided by the
// capacity. Expired objects and unallocated storage contribute zero, so the
// value is in [0, 1]. A density near one means the unit is full for all
// incoming objects; the gap between the density and an object's importance
// indicates the object's expected longevity (Section 5.1.2).
func (u *Unit) DensityAt(now time.Duration) float64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	weighted := 0.0
	for _, o := range u.order {
		weighted += o.WeightedImportance(now)
	}
	return weighted / float64(u.capacity)
}

// ByteImportance returns one weighted sample per resident (current
// importance weighted by size), the raw material of the Figure 7 CDF.
func (u *Unit) ByteImportance(now time.Duration) []stats.WeightedSample {
	u.mu.Lock()
	defer u.mu.Unlock()
	samples := make([]stats.WeightedSample, 0, len(u.order))
	for _, o := range u.order {
		samples = append(samples, stats.WeightedSample{
			Value:  o.ImportanceAt(now),
			Weight: float64(o.Size),
		})
	}
	return samples
}
