package store

import (
	"errors"
	"fmt"
	"time"

	"besteffs/internal/object"
	"besteffs/internal/policy"
)

// Update implements Besteffs's versioned writes: "Objects are read-only and
// write once with versioned updates" (Section 4.1). An update supersedes
// the resident version under the same ID: the old version's bytes are
// reclaimable by right (the creator owns the object), so admission plans
// against the unit as if the old version were already gone, and on success
// the new version replaces it atomically with the version number bumped.
//
// The superseded version is reported through the eviction hook with
// PreemptedBy set to the object's own ID, so accounting distinguishes
// "lost to competition" from "replaced by its successor".

// ErrNotResident reports an update for an ID that is not stored.
var ErrNotResident = errors.New("store: update target not resident")

// Update replaces the resident version of o.ID with o. The new version's
// admission follows the unit policy with the old version's bytes treated
// as free; rejections leave the old version untouched.
func (u *Unit) Update(o *object.Object, now time.Duration) (policy.Decision, error) {
	if o == nil {
		return policy.Decision{}, errors.New("store: nil object")
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old, ok := u.residents[o.ID]
	if !ok {
		return policy.Decision{}, fmt.Errorf("%w: %s", ErrNotResident, o.ID)
	}

	// Plan against a view without the old version, its bytes counted as
	// free.
	view := policy.View{
		Capacity:  u.capacity,
		Free:      u.free + old.Size,
		Residents: make([]*object.Object, 0, len(u.order)-1),
	}
	for _, r := range u.order {
		if r.ID != o.ID {
			view.Residents = append(view.Residents, r)
		}
	}
	d := u.pol.Plan(view, o, now)
	if !d.Admit {
		u.counters.Rejected++
		if u.onReject != nil {
			u.onReject(Rejection{Object: o, Time: now, Boundary: d.HighestPreempted, Reason: d.Reason})
		}
		return d, nil
	}

	// Supersede the old version first (reported as preempted by its own
	// successor), then evict the plan's victims, then insert.
	u.evictLocked(old, now, o.ID)
	for _, victim := range d.Victims {
		u.evictLocked(victim, now, o.ID)
	}
	next := *o
	next.Version = old.Version + 1
	u.residents[next.ID] = &next
	u.order = append(u.order, &next)
	u.free -= next.Size
	u.counters.Admitted++
	u.counters.AdmittedBytes += next.Size
	if u.onAdmit != nil {
		u.onAdmit(&next, now)
	}
	return d, nil
}
