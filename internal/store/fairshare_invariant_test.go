package store

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

// TestFairShareQuotaInvariant drives a FairShare-governed unit with a
// random multi-owner stream and checks after every operation that no owner
// ever holds more than their share.
func TestFairShareQuotaInvariant(t *testing.T) {
	const (
		capacity = 10_000
		share    = 0.4
	)
	owners := []string{"alice", "bob", "carol"}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			u, err := New(capacity, policy.FairShare{MaxFraction: share})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			now := time.Duration(0)
			for i := 0; i < 2000; i++ {
				now += time.Duration(rng.Intn(8)) * time.Hour
				owner := owners[rng.Intn(len(owners))]
				o, err := object.New(object.ID(fmt.Sprintf("%s/%05d", owner, i)),
					int64(1+rng.Intn(2000)), now,
					importance.TwoStep{
						Plateau: float64(1+rng.Intn(10)) / 10,
						Persist: time.Duration(rng.Intn(20)) * day,
						Wane:    time.Duration(rng.Intn(20)) * day,
					})
				if err != nil {
					t.Fatalf("object.New: %v", err)
				}
				o.Owner = owner
				if _, err := u.Put(o, now); err != nil {
					t.Fatalf("Put: %v", err)
				}

				held := make(map[string]int64)
				for _, r := range u.Residents() {
					held[r.Owner] += r.Size
				}
				quota := int64(share * capacity)
				for owner, bytes := range held {
					if bytes > quota {
						t.Fatalf("step %d: %s holds %d > quota %d", i, owner, bytes, quota)
					}
				}
				if u.Used()+u.Free() != u.Capacity() {
					t.Fatalf("step %d: accounting broken", i)
				}
			}
			// The unit served all three owners, not just one.
			held := make(map[string]bool)
			for _, r := range u.Residents() {
				held[r.Owner] = true
			}
			if len(held) < 2 {
				t.Errorf("only %d owners resident at end", len(held))
			}
		})
	}
}
