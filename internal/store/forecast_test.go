package store

import (
	"errors"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/policy"
)

func TestForecastDensityDecay(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	// 1000 bytes: half constant at 1.0, half a two-step that expires at
	// day 20.
	if _, err := u.Put(mkObj(t, "fixed", 500, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := u.Put(mkObj(t, "waning", 500, 0,
		importance.TwoStep{Plateau: 1, Persist: 10 * day, Wane: 10 * day}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}

	pts, err := u.ForecastDensity(0, 30*day, 5*day)
	if err != nil {
		t.Fatalf("ForecastDensity: %v", err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d, want 7", len(pts))
	}
	// The forecast at t must equal the live density at t: the trajectory
	// is exact, not approximate.
	for _, p := range pts {
		if live := u.DensityAt(p.T); p.V != live {
			t.Errorf("forecast at %v = %v, live density %v", p.T, p.V, live)
		}
	}
	// Shape: starts at 1.0, ends at 0.5 after the waning half expires.
	if pts[0].V != 1 {
		t.Errorf("forecast at 0 = %v, want 1", pts[0].V)
	}
	if last := pts[len(pts)-1]; last.V != 0.5 {
		t.Errorf("forecast at 30d = %v, want 0.5", last.V)
	}
	// Monotone for this resident set.
	for i := 1; i < len(pts); i++ {
		if pts[i].V > pts[i-1].V {
			t.Errorf("forecast increased at %v", pts[i].T)
		}
	}
}

func TestAdmissibleAt(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	// Full of a plateau that starts waning at day 10 and expires day 20.
	if _, err := u.Put(mkObj(t, "blocker", 1000, 0,
		importance.TwoStep{Plateau: 0.9, Persist: 10 * day, Wane: 10 * day}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// A 0.5-level object is blocked now, admissible once the blocker
	// wanes below 0.5: at day 10 + (0.4/0.9)*10d ~ day 14.4; with a 1-day
	// step the first admissible probe lands on day 15.
	at, ok, err := u.AdmissibleAt(500, 0.5, 0, 30*day, day)
	if err != nil {
		t.Fatalf("AdmissibleAt: %v", err)
	}
	if !ok {
		t.Fatal("never admissible within horizon")
	}
	if at < 14*day || at > 16*day {
		t.Errorf("admissible at %v, want ~day 15", at)
	}
	// Confirm against the live probe at that instant.
	probe := mkObj(t, "confirm", 500, at, importance.Constant{Level: 0.5})
	if d := u.Probe(probe, at); !d.Admit {
		t.Error("live probe disagrees with AdmissibleAt")
	}

	// A 1.0-level object is admissible immediately (preempts 0.9).
	at, ok, err = u.AdmissibleAt(500, 1, 0, 30*day, day)
	if err != nil || !ok || at != 0 {
		t.Errorf("level-1 AdmissibleAt = %v, %v, %v; want now", at, ok, err)
	}

	// An equal-importance object stays blocked until the blocker starts
	// waning.
	at, ok, err = u.AdmissibleAt(500, 0.9, 0, 30*day, day)
	if err != nil || !ok {
		t.Fatalf("AdmissibleAt = %v, %v", ok, err)
	}
	if at < 10*day {
		t.Errorf("equal importance admissible at %v, want after the plateau", at)
	}
}

func TestAdmissibleAtNever(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Put(mkObj(t, "pinned", 1000, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_, ok, err := u.AdmissibleAt(500, 0.5, 0, 60*day, day)
	if err != nil {
		t.Fatalf("AdmissibleAt: %v", err)
	}
	if ok {
		t.Error("admission against a pinned unit should never open up")
	}
}

func TestForecastValidation(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.ForecastDensity(0, 0, day); !errors.Is(err, ErrBadForecast) {
		t.Errorf("zero horizon err = %v", err)
	}
	if _, err := u.ForecastDensity(0, day, 0); !errors.Is(err, ErrBadForecast) {
		t.Errorf("zero step err = %v", err)
	}
	if _, _, err := u.AdmissibleAt(0, 0.5, 0, day, time.Hour); !errors.Is(err, ErrBadForecast) {
		t.Errorf("zero size err = %v", err)
	}
	if _, _, err := u.AdmissibleAt(10, 1.5, 0, day, time.Hour); !errors.Is(err, ErrBadForecast) {
		t.Errorf("bad level err = %v", err)
	}
}
