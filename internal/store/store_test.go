package store

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
)

const day = importance.Day

func newUnit(t *testing.T, capacity int64, pol policy.Policy, opts ...Option) *Unit {
	t.Helper()
	u, err := New(capacity, pol, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return u
}

func mkObj(t *testing.T, id string, size int64, arrival time.Duration, imp importance.Function) *object.Object {
	t.Helper()
	o, err := object.New(object.ID(id), size, arrival, imp)
	if err != nil {
		t.Fatalf("object.New(%s): %v", id, err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, policy.TemporalImportance{}); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("zero capacity err = %v, want ErrBadCapacity", err)
	}
	if _, err := New(-1, policy.TemporalImportance{}); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("negative capacity err = %v, want ErrBadCapacity", err)
	}
	if _, err := New(100, nil); !errors.Is(err, ErrNilPolicy) {
		t.Errorf("nil policy err = %v, want ErrNilPolicy", err)
	}
}

func TestPutGetDelete(t *testing.T) {
	u := newUnit(t, 100, policy.TemporalImportance{}, WithName("n1"))
	if u.Name() != "n1" {
		t.Errorf("Name = %q, want n1", u.Name())
	}
	o := mkObj(t, "a", 40, 0, importance.Constant{Level: 1})
	d, err := u.Put(o, 0)
	if err != nil || !d.Admit {
		t.Fatalf("Put = %+v, %v", d, err)
	}
	if u.Used() != 40 || u.Free() != 60 || u.Len() != 1 {
		t.Errorf("Used/Free/Len = %d/%d/%d, want 40/60/1", u.Used(), u.Free(), u.Len())
	}
	got, err := u.Get("a")
	if err != nil || got.ID != "a" {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := u.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing err = %v, want ErrNotFound", err)
	}
	if err := u.Delete("a"); err != nil {
		t.Errorf("Delete: %v", err)
	}
	if err := u.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second Delete err = %v, want ErrNotFound", err)
	}
	if u.Used() != 0 || u.Len() != 0 {
		t.Errorf("after delete Used/Len = %d/%d, want 0/0", u.Used(), u.Len())
	}
	c := u.CountersSnapshot()
	if c.Admitted != 1 || c.Deleted != 1 || c.Evicted != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPutDuplicateID(t *testing.T) {
	u := newUnit(t, 100, policy.TemporalImportance{})
	o := mkObj(t, "a", 10, 0, importance.Constant{Level: 1})
	if _, err := u.Put(o, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	dup := mkObj(t, "a", 20, 0, importance.Constant{Level: 1})
	if _, err := u.Put(dup, 0); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate Put err = %v, want ErrDuplicateID", err)
	}
	if u.Used() != 10 {
		t.Errorf("duplicate Put changed usage: %d", u.Used())
	}
}

func TestPutNil(t *testing.T) {
	u := newUnit(t, 100, policy.TemporalImportance{})
	if _, err := u.Put(nil, 0); err == nil {
		t.Error("Put(nil) should fail")
	}
}

func TestPreemptionLifecycle(t *testing.T) {
	var evictions []Eviction
	var rejections []Rejection
	u := newUnit(t, 100, policy.TemporalImportance{},
		WithEvictionHook(func(e Eviction) { evictions = append(evictions, e) }),
		WithRejectionHook(func(r Rejection) { rejections = append(rejections, r) }),
	)

	// Fill with a low-importance object that wanes.
	low := mkObj(t, "low", 100, 0, importance.TwoStep{Plateau: 0.4, Persist: 10 * day, Wane: 10 * day})
	if _, err := u.Put(low, 0); err != nil {
		t.Fatalf("Put low: %v", err)
	}

	// An equal-importance arrival is rejected while low is at plateau.
	equal := mkObj(t, "equal", 50, 5*day, importance.Constant{Level: 0.4})
	d, err := u.Put(equal, 5*day)
	if err != nil || d.Admit {
		t.Fatalf("equal-importance Put = %+v, %v; want rejection", d, err)
	}
	if len(rejections) != 1 || rejections[0].Boundary != 0.4 || rejections[0].Reason != policy.ReasonFull {
		t.Errorf("rejections = %+v", rejections)
	}

	// A higher-importance arrival preempts.
	high := mkObj(t, "high", 80, 5*day, importance.Constant{Level: 0.9})
	d, err = u.Put(high, 5*day)
	if err != nil || !d.Admit {
		t.Fatalf("high Put = %+v, %v", d, err)
	}
	if len(evictions) != 1 {
		t.Fatalf("evictions = %+v, want one", evictions)
	}
	e := evictions[0]
	if e.Object.ID != "low" || e.Time != 5*day || e.LifetimeAchieved != 5*day ||
		e.Importance != 0.4 || e.PreemptedBy != "high" {
		t.Errorf("eviction record = %+v", e)
	}
	if u.Used() != 80 || u.Len() != 1 {
		t.Errorf("Used/Len = %d/%d, want 80/1", u.Used(), u.Len())
	}
	c := u.CountersSnapshot()
	if c.Admitted != 2 || c.Rejected != 1 || c.Evicted != 1 ||
		c.AdmittedBytes != 180 || c.EvictedBytes != 100 {
		t.Errorf("counters = %+v", c)
	}
}

func TestAdmissionHook(t *testing.T) {
	var admitted []object.ID
	u := newUnit(t, 100, policy.TemporalImportance{},
		WithAdmissionHook(func(o *object.Object, now time.Duration) {
			admitted = append(admitted, o.ID)
		}))
	if _, err := u.Put(mkObj(t, "a", 10, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if len(admitted) != 1 || admitted[0] != "a" {
		t.Errorf("admitted = %v", admitted)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	u := newUnit(t, 100, policy.TemporalImportance{})
	if _, err := u.Put(mkObj(t, "low", 100, 0, importance.Constant{Level: 0.3}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	probe := mkObj(t, "probe", 50, 0, importance.Constant{Level: 0.8})
	d := u.Probe(probe, 0)
	if !d.Admit || d.HighestPreempted != 0.3 {
		t.Errorf("Probe = %+v, want admissible with boundary 0.3", d)
	}
	if u.Len() != 1 || u.Used() != 100 {
		t.Errorf("Probe mutated the unit: Len=%d Used=%d", u.Len(), u.Used())
	}
	if _, err := u.Get("low"); err != nil {
		t.Errorf("resident disappeared after Probe: %v", err)
	}
}

func TestDensityAt(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	// 500 bytes at importance 1, 300 bytes waning, 200 bytes free.
	if _, err := u.Put(mkObj(t, "full", 500, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	waning := importance.TwoStep{Plateau: 1, Persist: 10 * day, Wane: 10 * day}
	if _, err := u.Put(mkObj(t, "wane", 300, 0, waning), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := u.DensityAt(0); got != 0.8 {
		t.Errorf("density at plateau = %v, want 0.8", got)
	}
	// At day 15 the waning object is at 0.5: density 0.5 + 0.15 = 0.65.
	if got := u.DensityAt(15 * day); got != 0.65 {
		t.Errorf("density mid-wane = %v, want 0.65", got)
	}
	// Past expiry the waning object contributes zero.
	if got := u.DensityAt(30 * day); got != 0.5 {
		t.Errorf("density after expiry = %v, want 0.5", got)
	}
}

func TestDensityEmptyUnit(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if got := u.DensityAt(0); got != 0 {
		t.Errorf("empty density = %v, want 0", got)
	}
}

func TestByteImportance(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Put(mkObj(t, "a", 570, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := u.Put(mkObj(t, "b", 430, 0, importance.Constant{Level: 0.5}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	samples := u.ByteImportance(0)
	if len(samples) != 2 {
		t.Fatalf("samples = %v", samples)
	}
	total := samples[0].Weight + samples[1].Weight
	if total != 1000 {
		t.Errorf("total weight = %v, want 1000", total)
	}
}

func TestDropExpired(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	if _, err := u.Put(mkObj(t, "short", 100, 0, importance.TwoStep{Plateau: 1, Persist: 5 * day, Wane: 0}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := u.Put(mkObj(t, "long", 100, 0, importance.Constant{Level: 1}), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n := u.DropExpired(3 * day); n != 0 {
		t.Errorf("DropExpired before expiry = %d, want 0", n)
	}
	if n := u.DropExpired(6 * day); n != 1 {
		t.Errorf("DropExpired after expiry = %d, want 1", n)
	}
	if _, err := u.Get("short"); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired object still resident: %v", err)
	}
	if _, err := u.Get("long"); err != nil {
		t.Errorf("live object dropped: %v", err)
	}
}

func TestResidentsSortedSnapshot(t *testing.T) {
	u := newUnit(t, 1000, policy.TemporalImportance{})
	for _, id := range []string{"c", "a", "b"} {
		if _, err := u.Put(mkObj(t, id, 10, 0, importance.Constant{Level: 1}), 0); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	got := u.Residents()
	if len(got) != 3 || got[0].ID != "a" || got[1].ID != "b" || got[2].ID != "c" {
		t.Errorf("Residents = %v, want sorted [a b c]", got)
	}
}

func TestFIFOUnitNeverRejects(t *testing.T) {
	u := newUnit(t, 100, policy.FIFO{})
	for i := 0; i < 50; i++ {
		o := mkObj(t, fmt.Sprintf("o%02d", i), 40, time.Duration(i)*day, importance.Dirac{})
		d, err := u.Put(o, time.Duration(i)*day)
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if !d.Admit {
			t.Fatalf("FIFO rejected object %d: %+v", i, d)
		}
		if u.Used() > u.Capacity() {
			t.Fatalf("capacity exceeded: used %d", u.Used())
		}
	}
	if c := u.CountersSnapshot(); c.Rejected != 0 {
		t.Errorf("FIFO rejections = %d, want 0", c.Rejected)
	}
}

func TestAccountingIdentity(t *testing.T) {
	u := newUnit(t, 100, policy.TemporalImportance{})
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += 6 * time.Hour
		level := float64(i%10) / 10
		o := mkObj(t, fmt.Sprintf("o%03d", i), int64(10+i%40), now,
			importance.TwoStep{Plateau: level, Persist: 5 * day, Wane: 10 * day})
		if _, err := u.Put(o, now); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if u.Used()+u.Free() != u.Capacity() {
			t.Fatalf("used+free != capacity at step %d", i)
		}
		if u.Used() < 0 || u.Free() < 0 {
			t.Fatalf("negative accounting at step %d", i)
		}
		if d := u.DensityAt(now); d < 0 || d > 1 {
			t.Fatalf("density out of range at step %d: %v", i, d)
		}
	}
	c := u.CountersSnapshot()
	if c.Admitted+c.Rejected != 200 {
		t.Errorf("admitted %d + rejected %d != 200", c.Admitted, c.Rejected)
	}
}
