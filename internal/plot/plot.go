// Package plot renders experiment results as ASCII charts and aligned
// tables for the paperbench binary and EXPERIMENTS.md. It is intentionally
// small: scatter/line charts on a character grid with per-series glyphs,
// plus column-aligned tables. For external tooling, every figure also emits
// CSV via internal/metrics.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Chart is an ASCII scatter chart with one glyph per series.
type Chart struct {
	// Title is printed above the grid.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Width and Height are the grid size in characters (defaults 72x20).
	Width, Height int
	// YMin and YMax fix the y range when YFixed is set; otherwise the
	// range adapts to the data.
	YMin, YMax float64
	// YFixed pins the y range to [YMin, YMax] (for densities in [0,1]).
	YFixed bool

	series []series
}

type series struct {
	name   string
	glyph  byte
	points []Point
}

// glyphs are assigned to series in order.
var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Add appends a named series. Series beyond the glyph set reuse glyphs.
func (c *Chart) Add(name string, points []Point) {
	g := glyphs[len(c.series)%len(glyphs)]
	c.series = append(c.series, series{name: name, glyph: g, points: points})
}

// Render draws the chart. An empty chart renders a note instead of a grid.
func (c *Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	var all []Point
	for _, s := range c.series {
		all = append(all, s.points...)
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(all) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, p := range all {
		xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
		ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
	}
	if c.YFixed {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for _, p := range s.points {
			col := int((p.X - xmin) / (xmax - xmin) * float64(width-1))
			row := int((p.Y - ymin) / (ymax - ymin) * float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[height-1-row][col] = s.glyph
		}
	}

	yLo, yHi := formatTick(ymin), formatTick(ymax)
	labelWidth := max(len(yLo), len(yHi))
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = pad(yHi, labelWidth)
		case height - 1:
			label = pad(yLo, labelWidth)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", gap), xHi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "  x: %s, y: %s\n", c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", s.glyph, s.name)
	}
	return b.String()
}

func formatTick(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", w-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
