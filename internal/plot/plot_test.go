package plot

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{Title: "demo", XLabel: "day", YLabel: "density", Width: 40, Height: 10}
	c.Add("a", []Point{{0, 0}, {5, 0.5}, {10, 1}})
	c.Add("b", []Point{{0, 1}, {10, 0}})
	out := c.Render()
	for _, want := range []string{"demo", "*", "+", "x: day, y: density", "a\n", "b\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + 10 grid rows + axis + tick labels + axis names + 2 legend + trailing.
	if len(lines) < 15 {
		t.Errorf("render too short: %d lines", len(lines))
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestChartFixedYRange(t *testing.T) {
	c := Chart{Width: 20, Height: 5, YFixed: true, YMin: 0, YMax: 1}
	c.Add("s", []Point{{0, 0.5}, {1, 0.5}})
	out := c.Render()
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Errorf("fixed range ticks missing:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := Chart{Width: 10, Height: 4}
	c.Add("s", []Point{{3, 7}})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestChartGlyphsCycle(t *testing.T) {
	c := Chart{Width: 10, Height: 4}
	for i := 0; i < 10; i++ {
		c.Add("s", []Point{{float64(i), 1}})
	}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("glyph cycling broke:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"policy", "rejections"}, [][]string{
		{"temporal-importance", "12"},
		{"palimpsest-fifo", "0"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "rejections" starts at the same offset everywhere.
	idx := strings.Index(lines[0], "rejections")
	if got := strings.Index(lines[2], "12"); got != idx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", idx, got, out)
	}
}

func TestTableShortRow(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Errorf("short row dropped:\n%s", out)
	}
}
