package policy

import (
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

const day = importance.Day

// obj builds a resident with the given ID, size, arrival and importance.
func obj(t *testing.T, id string, size int64, arrival time.Duration, imp importance.Function) *object.Object {
	t.Helper()
	o, err := object.New(object.ID(id), size, arrival, imp)
	if err != nil {
		t.Fatalf("object.New(%s): %v", id, err)
	}
	return o
}

// constImp returns a never-expiring importance at the given level.
func constImp(level float64) importance.Function { return importance.Constant{Level: level} }

func TestTemporalImportanceAdmitsIntoFreeSpace(t *testing.T) {
	var p TemporalImportance
	view := View{Capacity: 100, Free: 100}
	d := p.Plan(view, obj(t, "a", 60, 0, constImp(0.1)), 0)
	if !d.Admit || len(d.Victims) != 0 || d.Reason != ReasonNone {
		t.Errorf("Plan into free space = %+v, want plain admit", d)
	}
}

func TestTemporalImportanceRejectsTooLarge(t *testing.T) {
	var p TemporalImportance
	view := View{Capacity: 100, Free: 100}
	d := p.Plan(view, obj(t, "a", 101, 0, constImp(1)), 0)
	if d.Admit || d.Reason != ReasonTooLarge {
		t.Errorf("Plan of oversized object = %+v, want ReasonTooLarge", d)
	}
}

func TestTemporalImportancePreemptsLowerImportance(t *testing.T) {
	var p TemporalImportance
	low := obj(t, "low", 50, 0, constImp(0.2))
	high := obj(t, "high", 50, 0, constImp(0.9))
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{high, low}}

	d := p.Plan(view, obj(t, "mid", 50, 100*day, constImp(0.5)), 100*day)
	if !d.Admit {
		t.Fatalf("Plan = %+v, want admit by preempting the 0.2 object", d)
	}
	if len(d.Victims) != 1 || d.Victims[0].ID != "low" {
		t.Errorf("victims = %v, want [low]", d.Victims)
	}
	if d.HighestPreempted != 0.2 {
		t.Errorf("HighestPreempted = %v, want 0.2", d.HighestPreempted)
	}
	if d.FreedBytes != 50 {
		t.Errorf("FreedBytes = %v, want 50", d.FreedBytes)
	}
}

func TestTemporalImportanceEqualImportanceCannotPreempt(t *testing.T) {
	var p TemporalImportance
	resident := obj(t, "r", 100, 0, constImp(0.5))
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{resident}}
	d := p.Plan(view, obj(t, "in", 50, 0, constImp(0.5)), 0)
	if d.Admit || d.Reason != ReasonFull {
		t.Errorf("equal importance plan = %+v, want ReasonFull", d)
	}
	if d.HighestPreempted != 0.5 {
		t.Errorf("boundary = %v, want the blocking importance 0.5", d.HighestPreempted)
	}
}

func TestTemporalImportanceOneIsNonPreemptible(t *testing.T) {
	var p TemporalImportance
	resident := obj(t, "r", 100, 0, constImp(1))
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{resident}}
	d := p.Plan(view, obj(t, "in", 10, 0, constImp(1)), 0)
	if d.Admit {
		t.Errorf("importance-one resident was preempted: %+v", d)
	}
}

func TestTemporalImportanceZeroIsFreelyReplaceable(t *testing.T) {
	var p TemporalImportance
	expired := obj(t, "r", 100, 0, importance.Dirac{})
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{expired}}
	// Even an incoming importance-zero object replaces an importance-zero
	// resident ("objects of importance zero may be freely replaced by any
	// other object").
	d := p.Plan(view, obj(t, "in", 100, 0, importance.Dirac{}), 0)
	if !d.Admit || len(d.Victims) != 1 {
		t.Errorf("zero-over-zero plan = %+v, want admit with one victim", d)
	}
}

func TestTemporalImportanceStopsAtBoundary(t *testing.T) {
	// Needs 90 bytes; the 0.1 and 0.3 residents free only 60, and the
	// next cheapest victim is at 0.8 >= incoming 0.5: reject, evict
	// nothing, report the 0.8 boundary.
	var p TemporalImportance
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{
		obj(t, "a", 30, 0, constImp(0.1)),
		obj(t, "b", 30, 0, constImp(0.3)),
		obj(t, "c", 40, 0, constImp(0.8)),
	}}
	d := p.Plan(view, obj(t, "in", 90, 0, constImp(0.5)), 0)
	if d.Admit || d.Reason != ReasonFull {
		t.Fatalf("plan = %+v, want ReasonFull", d)
	}
	if d.HighestPreempted != 0.8 {
		t.Errorf("boundary = %v, want 0.8", d.HighestPreempted)
	}
	if len(d.Victims) != 0 {
		t.Errorf("rejected plan proposed victims: %v", d.Victims)
	}
}

func TestTemporalImportanceEvictsInImportanceOrder(t *testing.T) {
	var p TemporalImportance
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{
		obj(t, "c", 30, 0, constImp(0.3)),
		obj(t, "a", 30, 0, constImp(0.1)),
		obj(t, "b", 40, 0, constImp(0.2)),
	}}
	d := p.Plan(view, obj(t, "in", 70, 0, constImp(0.9)), 0)
	if !d.Admit || len(d.Victims) != 2 {
		t.Fatalf("plan = %+v, want admit with 2 victims", d)
	}
	if d.Victims[0].ID != "a" || d.Victims[1].ID != "b" {
		t.Errorf("victims = [%s %s], want cheapest-first [a b]", d.Victims[0].ID, d.Victims[1].ID)
	}
	if d.HighestPreempted != 0.2 {
		t.Errorf("HighestPreempted = %v, want 0.2", d.HighestPreempted)
	}
}

func TestTemporalImportanceRemainingLifetimeTieBreak(t *testing.T) {
	var p TemporalImportance
	// Both residents are at importance 0.5 now; "soon" expires earlier
	// and must be preferred as the victim.
	soon := obj(t, "soon", 50, 0, importance.TwoStep{Plateau: 0.5, Persist: 10 * day, Wane: 0})
	late := obj(t, "late", 50, 0, importance.TwoStep{Plateau: 0.5, Persist: 100 * day, Wane: 0})
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{late, soon}}
	d := p.Plan(view, obj(t, "in", 50, 5*day, constImp(0.9)), 5*day)
	if !d.Admit || len(d.Victims) != 1 || d.Victims[0].ID != "soon" {
		t.Errorf("plan = %+v, want single victim 'soon'", d)
	}
}

func TestTemporalImportanceNeverExpiringSortsAfterExpiring(t *testing.T) {
	var p TemporalImportance
	expiring := obj(t, "expiring", 50, 0, importance.TwoStep{Plateau: 0.5, Persist: 1000 * day, Wane: 0})
	forever := obj(t, "forever", 50, 0, constImp(0.5))
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{forever, expiring}}
	d := p.Plan(view, obj(t, "in", 50, 0, constImp(0.9)), 0)
	if !d.Admit || len(d.Victims) != 1 || d.Victims[0].ID != "expiring" {
		t.Errorf("plan = %+v, want the expiring resident preempted first", d)
	}
}

func TestTemporalImportanceUsesCurrentImportance(t *testing.T) {
	var p TemporalImportance
	// At day 0 the resident is at plateau 0.9; at day 25 it has waned to
	// 0.3 and becomes preemptible by a 0.5 arrival.
	waning := obj(t, "w", 100, 0, importance.TwoStep{Plateau: 0.9, Persist: 15 * day, Wane: 15 * day})
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{waning}}

	early := p.Plan(view, obj(t, "in1", 50, 0, constImp(0.5)), 0)
	if early.Admit {
		t.Errorf("early plan admitted against plateau 0.9: %+v", early)
	}
	late := p.Plan(view, obj(t, "in2", 50, 25*day, constImp(0.5)), 25*day)
	if !late.Admit {
		t.Errorf("late plan rejected although resident waned to 0.3: %+v", late)
	}
}

func TestFIFOEvictsOldestAndNeverRejects(t *testing.T) {
	var p FIFO
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{
		obj(t, "new", 50, 10*day, constImp(1)),
		obj(t, "old", 50, 1*day, constImp(1)),
	}}
	d := p.Plan(view, obj(t, "in", 50, 20*day, importance.Dirac{}), 20*day)
	if !d.Admit || len(d.Victims) != 1 || d.Victims[0].ID != "old" {
		t.Errorf("plan = %+v, want oldest-first eviction of 'old'", d)
	}
	// FIFO ignores importance entirely: even importance-one residents go.
	if d.HighestPreempted != 1 {
		t.Errorf("projected HighestPreempted = %v, want 1", d.HighestPreempted)
	}
}

func TestFIFORejectsOnlyTooLarge(t *testing.T) {
	var p FIFO
	view := View{Capacity: 100, Free: 100}
	if d := p.Plan(view, obj(t, "big", 200, 0, importance.Dirac{}), 0); d.Admit || d.Reason != ReasonTooLarge {
		t.Errorf("oversized FIFO plan = %+v, want ReasonTooLarge", d)
	}
}

func TestTraditional(t *testing.T) {
	var p Traditional
	resident := obj(t, "r", 80, 0, constImp(0))
	view := View{Capacity: 100, Free: 20, Residents: []*object.Object{resident}}
	if d := p.Plan(view, obj(t, "fits", 20, 0, constImp(1)), 0); !d.Admit {
		t.Errorf("fitting object rejected: %+v", d)
	}
	// Even an expired resident is never reclaimed by Traditional.
	if d := p.Plan(view, obj(t, "in", 50, 0, constImp(1)), 0); d.Admit || d.Reason != ReasonFull {
		t.Errorf("overfull traditional plan = %+v, want ReasonFull", d)
	}
	if d := p.Plan(view, obj(t, "big", 101, 0, constImp(1)), 0); d.Reason != ReasonTooLarge {
		t.Errorf("oversized traditional plan = %+v, want ReasonTooLarge", d)
	}
}

func TestPolicyNames(t *testing.T) {
	if (TemporalImportance{}).Name() != "temporal-importance" ||
		(FIFO{}).Name() != "palimpsest-fifo" ||
		(Traditional{}).Name() != "traditional" {
		t.Error("unexpected policy names")
	}
}

func TestPlanDoesNotMutateView(t *testing.T) {
	var p TemporalImportance
	residents := []*object.Object{
		obj(t, "b", 50, 0, constImp(0.2)),
		obj(t, "a", 50, 0, constImp(0.1)),
	}
	view := View{Capacity: 100, Free: 0, Residents: residents}
	p.Plan(view, obj(t, "in", 60, 0, constImp(0.9)), 0)
	// The policy owns the slice during Plan and may reorder it, but must
	// not mutate the objects.
	for _, o := range residents {
		if o.Size != 50 {
			t.Errorf("Plan mutated resident %s", o.ID)
		}
	}
}
