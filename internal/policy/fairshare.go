package policy

import (
	"time"

	"besteffs/internal/object"
)

// FairShare layers per-owner capacity quotas over the temporal-importance
// policy. The paper identifies the need without designing the mechanism:
// "on a multi-user system, the system should restrict the importance
// functions for fairness, lest every user request infinite lifetime,
// essentially reverting to the traditional persistent until deleted model"
// (Section 1; multi-application sharing is left to follow-up work in
// Section 4.1). FairShare is that restriction in its simplest enforceable
// form: no owner may hold more than MaxFraction of the unit's capacity, so
// a user who annotates everything at importance one fills only their own
// share and cannot freeze out other users.
//
// Admission of an object from owner A works in two stages:
//
//  1. Quota: if A's resident bytes plus the object exceed A's share, the
//     overflow must be reclaimed from A's *own* objects, under the usual
//     preemption rules (strictly lower current importance, or zero). If
//     A's own cheaper objects cannot cover it, the unit is full for the
//     object regardless of other users' data.
//  2. Space: any remaining shortfall follows the plain temporal-importance
//     rules over every resident.
//
// Owners are object.Owner strings; objects with an empty owner share one
// anonymous quota.
type FairShare struct {
	// MaxFraction is the largest share of capacity one owner may hold,
	// in (0, 1]. A value of 1 disables the quota and degenerates to
	// TemporalImportance.
	MaxFraction float64
}

var _ Policy = FairShare{}

// ReasonQuota marks an object rejected because its owner's share is
// exhausted by objects the owner cannot preempt.
const ReasonQuota Reason = 3

// Name returns "fair-share".
func (FairShare) Name() string { return "fair-share" }

// Plan implements Policy.
func (p FairShare) Plan(view View, incoming *object.Object, now time.Duration) Decision {
	if p.MaxFraction <= 0 || p.MaxFraction > 1 {
		// An invalid share cannot admit anything; surface it loudly via
		// rejection rather than panicking in a planner.
		return Decision{Reason: ReasonQuota}
	}
	quota := int64(p.MaxFraction * float64(view.Capacity))
	if incoming.Size > quota {
		return Decision{Reason: ReasonTooLarge}
	}

	var ownerUsed int64
	var own []*object.Object
	for _, o := range view.Residents {
		if o.Owner == incoming.Owner {
			ownerUsed += o.Size
			own = append(own, o)
		}
	}

	arriving := incoming.ImportanceAt(now)
	var d Decision
	victims := make(map[object.ID]bool)

	// Stage 1: reclaim the quota overflow from the owner's own objects.
	if overQuota := ownerUsed + incoming.Size - quota; overQuota > 0 {
		for _, c := range rankByImportance(own, now) {
			if overQuota <= 0 {
				break
			}
			if c.imp > 0 && c.imp >= arriving {
				return Decision{Reason: ReasonQuota, HighestPreempted: c.imp}
			}
			victims[c.obj.ID] = true
			d.Victims = append(d.Victims, c.obj)
			d.FreedBytes += c.obj.Size
			if c.imp > d.HighestPreempted {
				d.HighestPreempted = c.imp
			}
			overQuota -= c.obj.Size
		}
		if overQuota > 0 {
			return Decision{Reason: ReasonQuota, HighestPreempted: d.HighestPreempted}
		}
	}

	// Stage 2: free the remaining bytes under the plain temporal rules.
	need := incoming.Size - view.Free - d.FreedBytes
	if need > 0 {
		for _, c := range rankByImportance(view.Residents, now) {
			if need <= 0 {
				break
			}
			if victims[c.obj.ID] {
				continue
			}
			if c.imp > 0 && c.imp >= arriving {
				return Decision{Reason: ReasonFull, HighestPreempted: c.imp}
			}
			victims[c.obj.ID] = true
			d.Victims = append(d.Victims, c.obj)
			d.FreedBytes += c.obj.Size
			if c.imp > d.HighestPreempted {
				d.HighestPreempted = c.imp
			}
			need -= c.obj.Size
		}
		if need > 0 {
			return Decision{Reason: ReasonFull, HighestPreempted: d.HighestPreempted}
		}
	}
	d.Admit = true
	return d
}
