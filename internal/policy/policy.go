// Package policy implements the admission and preemption policies evaluated
// in the paper: the temporal-importance policy of Section 5.3, the
// Palimpsest-like FIFO baseline, and a traditional never-reclaim policy.
//
// A policy is a pure planner: given a read-only view of a storage unit and
// an incoming object, it decides whether the object is admissible and which
// residents must be evicted to make room. The storage unit (package store)
// executes the plan; the same planner also serves non-mutating probes, which
// is how distributed placement asks a unit "how important is the most
// important object you would preempt for this?" without committing.
package policy

import (
	"sort"
	"time"

	"besteffs/internal/object"
)

// View is the read-only state a policy plans against. The Residents slice
// is borrowed from the caller for the duration of Plan: policies must not
// mutate it, reorder it, or retain it past the call (copy first to sort --
// rankByImportance builds its own candidate slice, which is why admission
// against a full unit never disturbs the caller's slice). This contract is
// what lets stores hand their live resident slice to Plan without an
// O(residents) defensive copy on every put.
type View struct {
	// Capacity is the unit's total size in bytes.
	Capacity int64
	// Free is the currently unallocated space in bytes.
	Free int64
	// Residents are the currently stored objects, in no particular order.
	Residents []*object.Object
}

// Reason explains a rejection.
type Reason int

// Rejection reasons.
const (
	// ReasonNone marks an admitted object.
	ReasonNone Reason = iota
	// ReasonTooLarge marks an object bigger than the unit's capacity.
	ReasonTooLarge
	// ReasonFull marks an object for which the unit is full: freeing
	// enough space would require preempting an object of equal or higher
	// current importance.
	ReasonFull
)

// String returns a short reason label.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonTooLarge:
		return "too-large"
	case ReasonFull:
		return "full"
	case ReasonQuota:
		return "quota"
	default:
		return "unknown"
	}
}

// Decision is a reclamation plan for one incoming object.
type Decision struct {
	// Admit reports whether the object can be stored.
	Admit bool
	// Victims are the residents to evict, in eviction order. Empty when
	// the object fits in free space or is rejected.
	Victims []*object.Object
	// HighestPreempted is the current importance of the most important
	// victim the plan preempts (zero if no victims). For a rejection it
	// is the importance of the object that blocked admission: the
	// importance boundary at which this unit is full. Distributed
	// placement minimizes this value across candidate units.
	HighestPreempted float64
	// FreedBytes is the total size of the victims.
	FreedBytes int64
	// Reason explains a rejection; ReasonNone for admitted objects.
	Reason Reason
}

// Policy plans admissions for a storage unit. Implementations must be
// stateless and safe for concurrent use; Plan must not retain or mutate the
// objects in the view.
type Policy interface {
	// Name returns a short identifier used in reports.
	Name() string
	// Plan decides admission of incoming at virtual time now.
	Plan(view View, incoming *object.Object, now time.Duration) Decision
}

// Compile-time interface checks.
var (
	_ Policy = TemporalImportance{}
	_ Policy = FIFO{}
	_ Policy = Traditional{}
)

// TemporalImportance is the paper's reclamation policy. Residents are
// considered for preemption in increasing order of current importance,
// breaking ties by smaller remaining lifetime (Section 5.3). An incoming
// object with current importance i may preempt residents of strictly lower
// current importance; residents at importance zero (expired, Dirac, or
// freely replaceable) may be preempted by any object. If freeing enough
// space would require evicting a resident at importance >= i (and > 0), the
// unit is full for this object and nothing is evicted.
//
// Consequences match the paper's Section 3 rules: importance-one residents
// are never preemptible (no incoming importance exceeds one), and
// importance-zero residents are freely replaceable.
type TemporalImportance struct{}

// Name returns "temporal-importance".
func (TemporalImportance) Name() string { return "temporal-importance" }

// Plan implements Policy.
func (TemporalImportance) Plan(view View, incoming *object.Object, now time.Duration) Decision {
	if incoming.Size > view.Capacity {
		return Decision{Reason: ReasonTooLarge}
	}
	need := incoming.Size - view.Free
	if need <= 0 {
		return Decision{Admit: true}
	}
	ranked := rankByImportance(view.Residents, now)
	arriving := incoming.ImportanceAt(now)
	var d Decision
	for _, c := range ranked {
		if need <= 0 {
			break
		}
		if c.imp > 0 && c.imp >= arriving {
			// The cheapest remaining victim is already at or above
			// the incoming importance: the unit is full for this
			// object. Record the boundary and evict nothing.
			return Decision{Reason: ReasonFull, HighestPreempted: c.imp}
		}
		d.Victims = append(d.Victims, c.obj)
		d.FreedBytes += c.obj.Size
		if c.imp > d.HighestPreempted {
			d.HighestPreempted = c.imp
		}
		need -= c.obj.Size
	}
	if need > 0 {
		// Defensive: only possible if Free+Σsizes < Capacity was violated
		// by the caller; treat as full with the observed boundary.
		return Decision{Reason: ReasonFull, HighestPreempted: d.HighestPreempted}
	}
	d.Admit = true
	return d
}

// candidate caches the sort keys of one resident.
type candidate struct {
	obj       *object.Object
	imp       float64
	remaining time.Duration
	forever   bool
}

// rankByImportance orders residents by increasing current importance, then
// by smaller remaining lifetime, then by ID for determinism. Never-expiring
// residents sort after expiring ones at equal importance.
func rankByImportance(residents []*object.Object, now time.Duration) []candidate {
	ranked := make([]candidate, 0, len(residents))
	for _, o := range residents {
		c := candidate{obj: o, imp: o.ImportanceAt(now)}
		rem, ok := o.Remaining(now)
		c.remaining, c.forever = rem, !ok
		ranked = append(ranked, c)
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.imp != b.imp {
			return a.imp < b.imp
		}
		if a.forever != b.forever {
			return !a.forever
		}
		if a.remaining != b.remaining {
			return a.remaining < b.remaining
		}
		return a.obj.ID < b.obj.ID
	})
	return ranked
}

// FIFO is the Palimpsest-like baseline: the oldest residents are discarded
// first and the store is never full for an object that fits the capacity.
// Objects carry no effective importance ("this requires that all objects
// have an importance of 0"); to reproduce Figure 10's comparison, the plan
// still reports the projected current importance of the most important
// victim as HighestPreempted.
type FIFO struct{}

// Name returns "palimpsest-fifo".
func (FIFO) Name() string { return "palimpsest-fifo" }

// Plan implements Policy.
func (FIFO) Plan(view View, incoming *object.Object, now time.Duration) Decision {
	if incoming.Size > view.Capacity {
		return Decision{Reason: ReasonTooLarge}
	}
	need := incoming.Size - view.Free
	if need <= 0 {
		return Decision{Admit: true}
	}
	byArrival := append([]*object.Object(nil), view.Residents...)
	sort.Slice(byArrival, func(i, j int) bool {
		if byArrival[i].Arrival != byArrival[j].Arrival {
			return byArrival[i].Arrival < byArrival[j].Arrival
		}
		return byArrival[i].ID < byArrival[j].ID
	})
	d := Decision{Admit: true}
	for _, o := range byArrival {
		if need <= 0 {
			break
		}
		d.Victims = append(d.Victims, o)
		d.FreedBytes += o.Size
		if imp := o.ImportanceAt(now); imp > d.HighestPreempted {
			d.HighestPreempted = imp
		}
		need -= o.Size
	}
	if need > 0 {
		return Decision{Reason: ReasonFull, HighestPreempted: d.HighestPreempted}
	}
	return d
}

// Traditional is classical persistent storage: nothing is ever reclaimed
// and an object that does not fit in free space is rejected. It calibrates
// the "fully used up in about 40 to 50 days" observation of Section 5.1.
type Traditional struct{}

// Name returns "traditional".
func (Traditional) Name() string { return "traditional" }

// Plan implements Policy.
func (Traditional) Plan(view View, incoming *object.Object, _ time.Duration) Decision {
	if incoming.Size > view.Capacity {
		return Decision{Reason: ReasonTooLarge}
	}
	if incoming.Size <= view.Free {
		return Decision{Admit: true}
	}
	return Decision{Reason: ReasonFull}
}
