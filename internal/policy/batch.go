package policy

// Group admission for the batched wire path. A batch of N puts planned one
// at a time costs N full re-sorts of the resident set; PlanGroup plans the
// whole group against ONE view snapshot, ranking residents at most once.
//
// Group semantics: every member is planned against the pre-batch resident
// set minus the victims consumed by earlier members, and admitted members
// are NOT added to the candidate set. Batch members therefore never preempt
// each other -- a batch is one burst of arrivals competing for the space
// that existed when it arrived, not a sequence of arrivals competing with
// each other. A member that would only fit by evicting an earlier member is
// rejected ReasonFull, exactly as if the space had never existed.

import (
	"time"

	"besteffs/internal/object"
)

// BatchPlanner is implemented by policies that can plan a whole group of
// admissions against a single view snapshot without re-ranking residents
// per member. Policies without it fall back to sequential planning.
type BatchPlanner interface {
	// PlanBatch returns one Decision per incoming object, observing the
	// group semantics documented on PlanGroup. Nil entries in incoming
	// yield the zero Decision.
	PlanBatch(view View, incoming []*object.Object, now time.Duration) []Decision
}

// Compile-time interface check.
var _ BatchPlanner = TemporalImportance{}

// PlanGroup plans the admission of a group of objects against one view
// snapshot, dispatching to the policy's PlanBatch when implemented and
// otherwise planning members sequentially against an incrementally updated
// copy of the view. Either way the group semantics are identical: members
// never preempt each other and no resident is evicted twice.
func PlanGroup(p Policy, view View, incoming []*object.Object, now time.Duration) []Decision {
	if bp, ok := p.(BatchPlanner); ok {
		return bp.PlanBatch(view, incoming, now)
	}
	out := make([]Decision, len(incoming))
	residents := append([]*object.Object(nil), view.Residents...)
	free := view.Free
	for k, o := range incoming {
		if o == nil {
			continue
		}
		d := p.Plan(View{
			Capacity:  view.Capacity,
			Free:      free,
			Residents: append([]*object.Object(nil), residents...),
		}, o, now)
		out[k] = d
		if !d.Admit {
			continue
		}
		if len(d.Victims) > 0 {
			gone := make(map[*object.Object]bool, len(d.Victims))
			for _, v := range d.Victims {
				gone[v] = true
			}
			kept := residents[:0]
			for _, r := range residents {
				if !gone[r] {
					kept = append(kept, r)
				}
			}
			residents = kept
		}
		free += d.FreedBytes - o.Size
	}
	return out
}

// PlanBatch implements BatchPlanner with a single resident ranking shared
// by every member: victims consumed by earlier members are skipped via a
// consumed set instead of re-sorting, so a batch of N puts costs one sort
// plus one linear scan per member.
func (TemporalImportance) PlanBatch(view View, incoming []*object.Object, now time.Duration) []Decision {
	out := make([]Decision, len(incoming))
	free := view.Free
	var ranked []candidate
	var consumed []bool
	for k, o := range incoming {
		if o == nil {
			continue
		}
		if o.Size > view.Capacity {
			out[k] = Decision{Reason: ReasonTooLarge}
			continue
		}
		need := o.Size - free
		if need <= 0 {
			out[k] = Decision{Admit: true}
			free -= o.Size
			continue
		}
		if ranked == nil {
			// Rank lazily: a batch that fits in free space never sorts.
			ranked = rankByImportance(view.Residents, now)
			consumed = make([]bool, len(ranked))
		}
		arriving := o.ImportanceAt(now)
		var d Decision
		var picked []int
		full := false
		for i, c := range ranked {
			if need <= 0 {
				break
			}
			if consumed[i] {
				continue
			}
			if c.imp > 0 && c.imp >= arriving {
				// Same boundary rule as Plan: the cheapest remaining
				// victim already matches the incoming importance.
				d = Decision{Reason: ReasonFull, HighestPreempted: c.imp}
				full = true
				break
			}
			picked = append(picked, i)
			d.Victims = append(d.Victims, c.obj)
			d.FreedBytes += c.obj.Size
			if c.imp > d.HighestPreempted {
				d.HighestPreempted = c.imp
			}
			need -= c.obj.Size
		}
		if full {
			out[k] = d
			continue
		}
		if need > 0 {
			// Ran out of candidates: full at the observed boundary. This is
			// the normal outcome for a member arriving after earlier members
			// consumed the cheap victims, not just the defensive case.
			out[k] = Decision{Reason: ReasonFull, HighestPreempted: d.HighestPreempted}
			continue
		}
		for _, i := range picked {
			consumed[i] = true
		}
		free += d.FreedBytes - o.Size
		d.Admit = true
		out[k] = d
	}
	return out
}
