package policy

import (
	"reflect"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

func mustObj(t *testing.T, id object.ID, size int64, level float64) *object.Object {
	t.Helper()
	o, err := object.New(id, size, 0, importance.Constant{Level: level})
	if err != nil {
		t.Fatalf("object.New(%s): %v", id, err)
	}
	return o
}

// TestPlanBatchMatchesPlanForSingles pins PlanBatch to Plan for one-element
// batches across the interesting single-put shapes: fits free space, evicts,
// blocked at the boundary, too large.
func TestPlanBatchMatchesPlanForSingles(t *testing.T) {
	pol := TemporalImportance{}
	residents := []*object.Object{
		mustObj(t, "low", 400, 0.2),
		mustObj(t, "mid", 300, 0.5),
		mustObj(t, "high", 200, 0.9),
	}
	view := func() View {
		return View{Capacity: 1000, Free: 100,
			Residents: append([]*object.Object(nil), residents...)}
	}
	cases := []*object.Object{
		mustObj(t, "fits", 100, 0.3),
		mustObj(t, "evicts-one", 450, 0.4),
		mustObj(t, "evicts-two", 700, 0.8),
		mustObj(t, "blocked", 900, 0.1),
		mustObj(t, "too-large", 2000, 1),
	}
	for _, in := range cases {
		t.Run(string(in.ID), func(t *testing.T) {
			want := pol.Plan(view(), in, 0)
			got := pol.PlanBatch(view(), []*object.Object{in}, 0)
			if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
				t.Errorf("PlanBatch = %+v, want %+v", got, want)
			}
		})
	}
}

// TestPlanBatchMembersNeverPreemptEachOther is the group-semantics contract:
// a member that would only fit by evicting an earlier member of the same
// batch is rejected, not admitted over its sibling.
func TestPlanBatchMembersNeverPreemptEachOther(t *testing.T) {
	pol := TemporalImportance{}
	view := View{Capacity: 1000, Free: 1000}
	batch := []*object.Object{
		mustObj(t, "first", 1000, 0.2),
		mustObj(t, "second", 1000, 0.9),
	}
	got := pol.PlanBatch(view, batch, 0)
	if !got[0].Admit {
		t.Fatalf("first member rejected: %+v", got[0])
	}
	if got[1].Admit {
		t.Fatalf("second member admitted over its sibling: %+v", got[1])
	}
	if got[1].Reason != ReasonFull {
		t.Errorf("second member reason = %v, want ReasonFull", got[1].Reason)
	}
}

// TestPlanBatchNoVictimConsumedTwice checks that victims consumed by an
// earlier member are skipped, not re-evicted, when a later member needs
// space too.
func TestPlanBatchNoVictimConsumedTwice(t *testing.T) {
	pol := TemporalImportance{}
	residents := []*object.Object{
		mustObj(t, "v1", 500, 0.1),
		mustObj(t, "v2", 500, 0.2),
	}
	view := View{Capacity: 1000, Free: 0, Residents: residents}
	batch := []*object.Object{
		mustObj(t, "a", 500, 0.8),
		mustObj(t, "b", 500, 0.8),
	}
	got := pol.PlanBatch(view, batch, 0)
	if !got[0].Admit || !got[1].Admit {
		t.Fatalf("both members should admit: %+v", got)
	}
	seen := map[object.ID]int{}
	for _, d := range got {
		for _, v := range d.Victims {
			seen[v.ID]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("victim %s consumed %d times", id, n)
		}
	}
	if len(seen) != 2 {
		t.Errorf("victims = %v, want v1 and v2 each once", seen)
	}
}

// TestPlanBatchExhaustionIsFull: a later member that runs out of preemptible
// candidates (they were consumed by siblings) is ReasonFull, and free space
// released by consumed victims is still accounted to earlier members only.
func TestPlanBatchExhaustionIsFull(t *testing.T) {
	pol := TemporalImportance{}
	residents := []*object.Object{
		mustObj(t, "v", 600, 0.1),
		mustObj(t, "pinned", 400, 1),
	}
	view := View{Capacity: 1000, Free: 0, Residents: residents}
	batch := []*object.Object{
		mustObj(t, "a", 600, 0.9),
		mustObj(t, "b", 600, 0.9),
	}
	got := pol.PlanBatch(view, batch, 0)
	if !got[0].Admit {
		t.Fatalf("first member rejected: %+v", got[0])
	}
	if got[1].Admit || got[1].Reason != ReasonFull {
		t.Errorf("second member = %+v, want ReasonFull", got[1])
	}
}

// TestPlanBatchNilMembers: nil entries yield the zero Decision and do not
// disturb their neighbours.
func TestPlanBatchNilMembers(t *testing.T) {
	pol := TemporalImportance{}
	view := View{Capacity: 1000, Free: 1000}
	got := pol.PlanBatch(view, []*object.Object{nil, mustObj(t, "x", 100, 0.5), nil}, 0)
	if got[0].Admit || got[2].Admit {
		t.Errorf("nil members admitted: %+v", got)
	}
	if !got[1].Admit {
		t.Errorf("real member rejected: %+v", got[1])
	}
}

// planCounter counts Plan calls to prove which path PlanGroup takes.
type planCounter struct {
	Policy
	calls int
}

func (p *planCounter) Plan(view View, incoming *object.Object, now time.Duration) Decision {
	p.calls++
	return p.Policy.Plan(view, incoming, now)
}

// TestPlanGroupFallbackIsSequential: a policy without PlanBatch is planned
// member by member with the view updated in between, with the same
// never-preempt-a-sibling semantics.
func TestPlanGroupFallbackIsSequential(t *testing.T) {
	pc := &planCounter{Policy: Traditional{}}
	view := View{Capacity: 1000, Free: 1000}
	batch := []*object.Object{
		mustObj(t, "a", 600, 0.5),
		mustObj(t, "b", 600, 0.5), // does not fit after a under Traditional
		mustObj(t, "c", 400, 0.5),
	}
	got := PlanGroup(pc, view, batch, 0)
	if pc.calls != 3 {
		t.Errorf("Plan calls = %d, want 3", pc.calls)
	}
	if !got[0].Admit || got[1].Admit || !got[2].Admit {
		t.Errorf("decisions = %+v, want admit/reject/admit", got)
	}
}

// TestPlanGroupDispatchesToBatchPlanner: TemporalImportance plans the whole
// group in one PlanBatch call (one ranking), verified by comparing with the
// direct call.
func TestPlanGroupDispatchesToBatchPlanner(t *testing.T) {
	pol := TemporalImportance{}
	residents := []*object.Object{mustObj(t, "v", 500, 0.1)}
	view := func() View {
		return View{Capacity: 1000, Free: 500,
			Residents: append([]*object.Object(nil), residents...)}
	}
	batch := []*object.Object{
		mustObj(t, "a", 700, 0.9),
		mustObj(t, "b", 300, 0.9),
	}
	want := pol.PlanBatch(view(), batch, 0)
	got := PlanGroup(pol, view(), batch, 0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanGroup = %+v, want %+v", got, want)
	}
}
