package policy

import (
	"fmt"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

// ownedObj builds a resident with an owner.
func ownedObj(t *testing.T, id string, owner string, size int64, arrival time.Duration, imp importance.Function) *object.Object {
	t.Helper()
	o := obj(t, id, size, arrival, imp)
	o.Owner = owner
	return o
}

func TestFairShareAdmitsWithinQuota(t *testing.T) {
	p := FairShare{MaxFraction: 0.5}
	view := View{Capacity: 100, Free: 100}
	d := p.Plan(view, ownedObj(t, "a", "alice", 50, 0, constImp(1)), 0)
	if !d.Admit {
		t.Errorf("within-quota plan = %+v, want admit", d)
	}
}

func TestFairShareRejectsOversizedForQuota(t *testing.T) {
	p := FairShare{MaxFraction: 0.5}
	view := View{Capacity: 100, Free: 100}
	d := p.Plan(view, ownedObj(t, "a", "alice", 60, 0, constImp(1)), 0)
	if d.Admit || d.Reason != ReasonTooLarge {
		t.Errorf("over-quota-sized plan = %+v, want ReasonTooLarge", d)
	}
}

func TestFairShareQuotaForcesSelfPreemption(t *testing.T) {
	// Alice holds her full 50-byte share, part of it waning; her next
	// object must displace her own cheapest object, not touch Bob's.
	p := FairShare{MaxFraction: 0.5}
	view := View{Capacity: 100, Free: 20, Residents: []*object.Object{
		ownedObj(t, "alice-old", "alice", 30, 0, constImp(0.2)),
		ownedObj(t, "alice-new", "alice", 20, 0, constImp(0.9)),
		ownedObj(t, "bob-low", "bob", 30, 0, constImp(0.1)),
	}}
	d := p.Plan(view, ownedObj(t, "alice-in", "alice", 30, 0, constImp(0.8)), 0)
	if !d.Admit {
		t.Fatalf("plan = %+v, want admit", d)
	}
	if len(d.Victims) != 1 || d.Victims[0].ID != "alice-old" {
		t.Errorf("victims = %v, want alice's own cheapest object", d.Victims)
	}
}

func TestFairShareQuotaBlocksImportantOwnData(t *testing.T) {
	// Alice's share is full of importance-one objects: her next object is
	// rejected with ReasonQuota even though Bob has cheap data and free
	// space abounds elsewhere.
	p := FairShare{MaxFraction: 0.5}
	view := View{Capacity: 100, Free: 20, Residents: []*object.Object{
		ownedObj(t, "alice-1", "alice", 50, 0, constImp(1)),
		ownedObj(t, "bob-low", "bob", 30, 0, constImp(0.1)),
	}}
	d := p.Plan(view, ownedObj(t, "alice-in", "alice", 10, 0, constImp(1)), 0)
	if d.Admit || d.Reason != ReasonQuota {
		t.Errorf("plan = %+v, want ReasonQuota", d)
	}
	if d.HighestPreempted != 1 {
		t.Errorf("boundary = %v, want 1 (the blocking own object)", d.HighestPreempted)
	}
}

func TestFairSharePreventsStarvation(t *testing.T) {
	// The Section 1 scenario: a greedy user annotates everything at
	// importance one. Under plain temporal importance they freeze out
	// everyone; under FairShare half the unit stays winnable.
	greedyFill := func(p Policy) (greedyBytes int64) {
		view := View{Capacity: 100, Free: 100}
		now := time.Duration(0)
		for i := 0; ; i++ {
			in := ownedObj(t, fmt.Sprintf("greedy-%d", i), "greedy", 10, now, constImp(1))
			d := p.Plan(view, in, now)
			if !d.Admit {
				return 100 - view.Free
			}
			view.Free -= in.Size
			view.Residents = append(view.Residents, in)
			if view.Free <= 0 {
				return 100
			}
		}
	}
	if got := greedyFill(TemporalImportance{}); got != 100 {
		t.Errorf("plain policy: greedy user holds %d/100", got)
	}
	if got := greedyFill(FairShare{MaxFraction: 0.5}); got != 50 {
		t.Errorf("fair share: greedy user holds %d/100, want 50", got)
	}

	// The other user can still store at modest importance afterwards.
	p := FairShare{MaxFraction: 0.5}
	view := View{Capacity: 100, Free: 50}
	for i := 0; i < 5; i++ {
		view.Residents = append(view.Residents,
			ownedObj(t, fmt.Sprintf("greedy-%d", i), "greedy", 10, 0, constImp(1)))
	}
	d := p.Plan(view, ownedObj(t, "meek", "meek", 40, 0, constImp(0.3)), 0)
	if !d.Admit {
		t.Errorf("other user blocked despite fair share: %+v", d)
	}
}

func TestFairShareStageTwoUsesGlobalRules(t *testing.T) {
	// Within quota, admission behaves exactly like TemporalImportance:
	// cheap foreign objects are preemptible, expensive ones are not.
	p := FairShare{MaxFraction: 0.8}
	view := View{Capacity: 100, Free: 0, Residents: []*object.Object{
		ownedObj(t, "bob-cheap", "bob", 50, 0, constImp(0.2)),
		ownedObj(t, "bob-dear", "bob", 50, 0, constImp(0.9)),
	}}
	d := p.Plan(view, ownedObj(t, "alice-in", "alice", 40, 0, constImp(0.5)), 0)
	if !d.Admit || len(d.Victims) != 1 || d.Victims[0].ID != "bob-cheap" {
		t.Errorf("plan = %+v, want preemption of bob-cheap only", d)
	}
	blocked := p.Plan(view, ownedObj(t, "alice-big", "alice", 70, 0, constImp(0.5)), 0)
	if blocked.Admit || blocked.Reason != ReasonFull {
		t.Errorf("plan = %+v, want ReasonFull (bob-dear blocks)", blocked)
	}
}

func TestFairShareFullFractionMatchesTemporal(t *testing.T) {
	// MaxFraction 1 must agree with TemporalImportance on a shared state.
	fair := FairShare{MaxFraction: 1}
	var plain TemporalImportance
	view := View{Capacity: 100, Free: 10, Residents: []*object.Object{
		ownedObj(t, "a", "x", 40, 0, constImp(0.3)),
		ownedObj(t, "b", "y", 50, 0, constImp(0.7)),
	}}
	in := ownedObj(t, "in", "z", 45, 0, constImp(0.5))
	df, dp := fair.Plan(view, in, 0), plain.Plan(view, in, 0)
	if df.Admit != dp.Admit || len(df.Victims) != len(dp.Victims) ||
		df.HighestPreempted != dp.HighestPreempted {
		t.Errorf("fair %+v vs plain %+v", df, dp)
	}
}

func TestFairShareInvalidFraction(t *testing.T) {
	for _, f := range []float64{0, -0.5, 1.5} {
		p := FairShare{MaxFraction: f}
		d := p.Plan(View{Capacity: 100, Free: 100}, ownedObj(t, "a", "x", 10, 0, constImp(1)), 0)
		if d.Admit {
			t.Errorf("MaxFraction %v admitted an object", f)
		}
	}
}

func TestFairShareName(t *testing.T) {
	if (FairShare{}).Name() != "fair-share" {
		t.Error("unexpected name")
	}
	if ReasonQuota.String() != "quota" {
		t.Errorf("ReasonQuota.String() = %q", ReasonQuota.String())
	}
}
