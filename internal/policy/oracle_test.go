package policy

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

// oraclePlan is an independent, deliberately naive restatement of the
// Section 5.3 admission rule, used as a differential-testing oracle:
//
//	sort residents by (current importance, remaining lifetime, ID);
//	walk the prefix of residents with importance 0 or < arriving;
//	admissible iff free space plus that prefix covers the object.
//
// It shares no code with TemporalImportance.Plan.
func oraclePlan(view View, incoming *object.Object, now time.Duration) (admit bool, victims []object.ID) {
	if incoming.Size > view.Capacity {
		return false, nil
	}
	need := incoming.Size - view.Free
	if need <= 0 {
		return true, nil
	}
	type entry struct {
		id      object.ID
		imp     float64
		remain  time.Duration
		forever bool
		size    int64
	}
	entries := make([]entry, 0, len(view.Residents))
	for _, o := range view.Residents {
		e := entry{id: o.ID, imp: o.ImportanceAt(now), size: o.Size}
		rem, ok := o.Remaining(now)
		e.remain, e.forever = rem, !ok
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.imp != b.imp {
			return a.imp < b.imp
		}
		if a.forever != b.forever {
			return !a.forever
		}
		if a.remain != b.remain {
			return a.remain < b.remain
		}
		return a.id < b.id
	})
	arriving := incoming.ImportanceAt(now)
	for _, e := range entries {
		if need <= 0 {
			break
		}
		if e.imp != 0 && e.imp >= arriving {
			return false, nil
		}
		victims = append(victims, e.id)
		need -= e.size
	}
	return need <= 0, victims
}

// TestTemporalImportanceMatchesOracle differentially tests Plan against the
// oracle over thousands of random unit states.
func TestTemporalImportanceMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var p TemporalImportance
	for trial := 0; trial < 4000; trial++ {
		capacity := int64(100 + rng.Intn(2000))
		used := int64(0)
		var residents []*object.Object
		for i := 0; used < capacity && i < 30; i++ {
			size := int64(1 + rng.Intn(300))
			if used+size > capacity {
				size = capacity - used
			}
			used += size
			var imp importance.Function
			switch rng.Intn(4) {
			case 0:
				imp = importance.Constant{Level: float64(rng.Intn(11)) / 10}
			case 1:
				imp = importance.Dirac{}
			default:
				imp = importance.TwoStep{
					Plateau: float64(rng.Intn(11)) / 10,
					Persist: time.Duration(rng.Intn(20)) * day,
					Wane:    time.Duration(rng.Intn(20)) * day,
				}
			}
			o, err := object.New(object.ID(fmt.Sprintf("r%02d", i)), size,
				time.Duration(rng.Intn(40))*day, imp)
			if err != nil {
				t.Fatalf("object.New: %v", err)
			}
			residents = append(residents, o)
		}
		now := 40 * day
		view := View{Capacity: capacity, Free: capacity - used, Residents: residents}
		incoming, err := object.New("in", int64(1+rng.Intn(int(capacity))), now,
			importance.Constant{Level: float64(rng.Intn(11)) / 10})
		if err != nil {
			t.Fatalf("object.New: %v", err)
		}

		want, wantVictims := oraclePlan(view, incoming, now)
		got := p.Plan(view, incoming, now)
		if got.Admit != want {
			t.Fatalf("trial %d: Plan admit = %t, oracle %t\nview: cap %d free %d, %d residents; incoming %d @ %.1f",
				trial, got.Admit, want, capacity, view.Free, len(residents),
				incoming.Size, incoming.ImportanceAt(now))
		}
		if !got.Admit {
			continue
		}
		if len(got.Victims) != len(wantVictims) {
			t.Fatalf("trial %d: victims %d vs oracle %d", trial, len(got.Victims), len(wantVictims))
		}
		for i, v := range got.Victims {
			if v.ID != wantVictims[i] {
				t.Fatalf("trial %d: victim %d = %s, oracle %s", trial, i, v.ID, wantVictims[i])
			}
		}
		// FreedBytes and HighestPreempted are consistent with victims.
		var freed int64
		highest := 0.0
		for _, v := range got.Victims {
			freed += v.Size
			if imp := v.ImportanceAt(now); imp > highest {
				highest = imp
			}
		}
		if freed != got.FreedBytes {
			t.Fatalf("trial %d: FreedBytes %d, victims sum %d", trial, got.FreedBytes, freed)
		}
		if highest != got.HighestPreempted {
			t.Fatalf("trial %d: HighestPreempted %v, victims max %v", trial, got.HighestPreempted, highest)
		}
	}
}
