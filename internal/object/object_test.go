package object

import (
	"errors"
	"testing"
	"time"

	"besteffs/internal/importance"
)

const day = importance.Day

func TestNewValidation(t *testing.T) {
	twoStep := importance.TwoStep{Plateau: 1, Persist: 15 * day, Wane: 15 * day}
	tests := []struct {
		name    string
		id      ID
		size    int64
		imp     importance.Function
		wantErr error
	}{
		{"valid", "a/b", 100, twoStep, nil},
		{"empty id", "", 100, twoStep, ErrEmptyID},
		{"zero size", "a", 0, twoStep, ErrBadSize},
		{"negative size", "a", -5, twoStep, ErrBadSize},
		{"nil importance", "a", 100, nil, ErrNilImportance},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o, err := New(tt.id, tt.size, 0, tt.imp)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("New() error = %v, want %v", err, tt.wantErr)
			}
			if err == nil && o.Version != 1 {
				t.Errorf("Version = %d, want 1", o.Version)
			}
		})
	}
}

func TestAgeAndImportance(t *testing.T) {
	o, err := New("x", 1024, 100*day, importance.TwoStep{Plateau: 1, Persist: 15 * day, Wane: 15 * day})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := o.Age(90 * day); got != 0 {
		t.Errorf("Age before arrival = %v, want 0", got)
	}
	if got := o.Age(110 * day); got != 10*day {
		t.Errorf("Age = %v, want 10d", got)
	}
	if got := o.ImportanceAt(110 * day); got != 1 {
		t.Errorf("ImportanceAt(persist) = %v, want 1", got)
	}
	if got := o.ImportanceAt(122*day + 12*time.Hour); got >= 1 || got <= 0 {
		t.Errorf("ImportanceAt(mid wane) = %v, want in (0, 1)", got)
	}
	if !o.Expired(131 * day) {
		t.Error("object should be expired after persist+wane")
	}
}

func TestExpireTimeAndRemaining(t *testing.T) {
	o, err := New("x", 1, 50*day, importance.TwoStep{Plateau: 1, Persist: 10 * day, Wane: 5 * day})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exp, ok := o.ExpireTime()
	if !ok || exp != 65*day {
		t.Errorf("ExpireTime = %v, %v; want 65d, true", exp, ok)
	}
	rem, ok := o.Remaining(55 * day)
	if !ok || rem != 10*day {
		t.Errorf("Remaining = %v, %v; want 10d, true", rem, ok)
	}

	forever, err := New("y", 1, 0, importance.Constant{Level: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok := forever.ExpireTime(); ok {
		t.Error("constant importance object should never expire")
	}
}

func TestWeightedImportance(t *testing.T) {
	o, err := New("x", 1000, 0, importance.TwoStep{Plateau: 0.5, Persist: 10 * day, Wane: 10 * day})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := o.WeightedImportance(0); got != 500 {
		t.Errorf("WeightedImportance at plateau = %v, want 500", got)
	}
	if got := o.WeightedImportance(15 * day); got != 250 {
		t.Errorf("WeightedImportance mid wane = %v, want 250", got)
	}
	if got := o.WeightedImportance(30 * day); got != 0 {
		t.Errorf("WeightedImportance after expiry = %v, want 0", got)
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassGeneric, "generic"},
		{ClassUniversity, "university"},
		{ClassStudent, "student"},
		{Class(99), "class(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}
