// Package object defines the storage object model of the Besteffs system.
//
// Objects are the unit of storage and reclamation: read-only, write-once
// blobs with versioned updates, described by the tuple (size, arrival time,
// temporal importance function) from Section 3 of the paper. The package is
// shared by the single-unit store, the distributed cluster, the simulator
// workloads and the network protocol.
package object

import (
	"errors"
	"fmt"
	"time"

	"besteffs/internal/importance"
)

// ID names an object. IDs are opaque, non-empty strings; workloads use
// hierarchical names such as "cs101/spring-0/lecture-12/v1".
type ID string

// Class coarsely groups objects by their creator, mirroring the paper's
// Section 5.2 scenario where university-operated cameras and student-created
// streams carry different importance annotations.
type Class int

// Object classes.
const (
	// ClassGeneric marks objects outside the lecture scenarios.
	ClassGeneric Class = iota
	// ClassUniversity marks streams from university-maintained cameras
	// (importance 1.0 during the semester).
	ClassUniversity
	// ClassStudent marks student-created interpretation streams
	// (importance 0.5 during the semester).
	ClassStudent
)

// String returns a short lower-case class name.
func (c Class) String() string {
	switch c {
	case ClassGeneric:
		return "generic"
	case ClassUniversity:
		return "university"
	case ClassStudent:
		return "student"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Construction errors.
var (
	// ErrEmptyID reports an object without a name.
	ErrEmptyID = errors.New("object: empty ID")
	// ErrBadSize reports a non-positive object size.
	ErrBadSize = errors.New("object: size must be positive")
	// ErrNilImportance reports an object without an importance function.
	ErrNilImportance = errors.New("object: nil importance function")
)

// Object is a stored blob plus its reclamation metadata. Objects are
// immutable once created (Besteffs is write-once with versioned updates);
// treat all fields as read-only after New.
type Object struct {
	// ID is the object's name. Versioned updates use distinct IDs.
	ID ID
	// Size is the payload size in bytes.
	Size int64
	// Arrival is the virtual time at which the object entered storage,
	// measured from the start of the simulation (or, for the live server,
	// from server start). Importance is evaluated at age now-Arrival.
	Arrival time.Duration
	// Importance is the temporal importance annotation supplied by the
	// content creator.
	Importance importance.Function
	// Owner identifies the content creator, used for fairness analysis.
	Owner string
	// Class groups the object for per-class reporting.
	Class Class
	// Version is the write-once version number, starting at 1.
	Version int
}

// New validates and builds an object. The version defaults to 1.
//
//besteffs:hotpath-ok the admitted object is the path's output; error formatting is the reject path
func New(id ID, size int64, arrival time.Duration, imp importance.Function) (*Object, error) {
	if id == "" {
		return nil, ErrEmptyID
	}
	if size <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	if imp == nil {
		return nil, ErrNilImportance
	}
	return &Object{ID: id, Size: size, Arrival: arrival, Importance: imp, Version: 1}, nil
}

// Age returns the object's age at the given virtual time. Times before the
// arrival report age zero.
func (o *Object) Age(now time.Duration) time.Duration {
	if now < o.Arrival {
		return 0
	}
	return now - o.Arrival
}

// ImportanceAt returns the object's current importance at the given virtual
// time.
func (o *Object) ImportanceAt(now time.Duration) float64 {
	return o.Importance.At(o.Age(now))
}

// Expired reports whether the object's importance has reached zero at the
// given virtual time. The system makes no availability guarantee for
// expired objects, though they may linger absent storage pressure.
func (o *Object) Expired(now time.Duration) bool {
	return o.ImportanceAt(now) == 0
}

// ExpireTime returns the virtual time at which the object expires. Objects
// that never expire report (0, false).
func (o *Object) ExpireTime() (time.Duration, bool) {
	age, ok := o.Importance.ExpireAge()
	if !ok {
		return 0, false
	}
	return o.Arrival + age, true
}

// Remaining returns the object's remaining lifetime at the given virtual
// time; (0, false) if the object never expires.
func (o *Object) Remaining(now time.Duration) (time.Duration, bool) {
	return importance.Remaining(o.Importance, o.Age(now))
}

// WeightedImportance returns Size scaled by the current importance: the
// object's contribution to the numerator of the storage importance density.
func (o *Object) WeightedImportance(now time.Duration) float64 {
	return float64(o.Size) * o.ImportanceAt(now)
}

// String summarizes the object for logs and test failures.
func (o *Object) String() string {
	return fmt.Sprintf("%s(v%d, %dB, %s, arrived %s)", o.ID, o.Version, o.Size, o.Class, o.Arrival)
}
