package repair_test

// Incremental anti-entropy: after the cluster converges, a further repair
// pass must ship zero index entries -- the per-peer delta state means a
// quiet cluster exchanges empty deltas, not full snapshots. A new object
// then travels as exactly one upsert, and a restarted peer (whose mirror is
// gone) forces the full-snapshot resync fallback.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"besteffs/internal/client"
	"besteffs/internal/importance"
	"besteffs/internal/object"
)

func TestSteadyStateDeltaSendsNoEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node test")
	}
	ctx := context.Background()
	nodes := startCluster(t, nil)

	cc, err := client.DialClusterSeed(ctx, nodes[0].addr, time.Second, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("DialClusterSeed: %v", err)
	}
	defer cc.Close()
	for i := 0; i < 6; i++ {
		id := object.ID(fmt.Sprintf("vital/steady-%02d", i))
		if _, err := cc.PutCtx(ctx, client.PutRequest{
			ID:         id,
			Importance: importance.Constant{Level: 1},
			Payload:    payloadFor(id),
		}); err != nil {
			t.Fatalf("put %s: %v", id, err)
		}
	}
	repairUntilConverged(t, ctx, nodes)

	// Drain the passes that still carry delta state changes (the convergence
	// loop's last round already acked everything, but be explicit): from here
	// on, every pass on every node must send zero entries and no full syncs.
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			pass, err := n.mgr.PassNow(ctx)
			if err != nil {
				t.Fatalf("steady pass on %s: %v", n.addr, err)
			}
			if round > 0 && (pass.IndexEntriesSent != 0 || pass.FullSyncs != 0) {
				t.Errorf("steady-state pass on %s sent %d index entries (%d full syncs), want 0",
					n.addr, pass.IndexEntriesSent, pass.FullSyncs)
			}
		}
	}

	// One new object travels as an incremental delta: the writer's next pass
	// sends only the changed entries, never a full snapshot.
	fresh := object.ID("vital/steady-new")
	c0, err := nodes[0].dial(time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c0.PutCtx(ctx, client.PutRequest{
		ID:         fresh,
		Importance: importance.Constant{Level: 1},
		Payload:    payloadFor(fresh),
	}); err != nil {
		t.Fatalf("put: %v", err)
	}
	c0.Close()
	pass, err := nodes[0].mgr.PassNow(ctx)
	if err != nil {
		t.Fatalf("delta pass: %v", err)
	}
	if pass.FullSyncs != 0 {
		t.Errorf("a single new object forced %d full syncs, want 0", pass.FullSyncs)
	}
	if pass.IndexEntriesSent == 0 || pass.IndexEntriesSent > 2*len(nodes) {
		t.Errorf("delta pass sent %d entries for one new object across %d peers",
			pass.IndexEntriesSent, len(nodes)-1)
	}

	// A restarted peer lost its mirrors; the next pass against it must fall
	// back to a full snapshot (Resync path) and converge again.
	nodes[1].kill()
	nodes[1].start([]string{nodes[0].addr})
	waitFor(t, 10*time.Second, func() bool {
		return len(nodes[1].agent.AlivePeers()) == 2
	}, "restart rejoin")
	full := 0
	deadline := time.Now().Add(10 * time.Second)
	for full == 0 && time.Now().Before(deadline) {
		pass, err := nodes[0].mgr.PassNow(ctx)
		if err != nil {
			t.Fatalf("resync pass: %v", err)
		}
		full += pass.FullSyncs
	}
	if full == 0 {
		t.Error("no full sync after a peer restart wiped its index mirror")
	}
}
