package repair_test

// Chaos tests for the clustered node: the PR's proof obligations. A
// three-node cluster with R=2 replication is subjected to a node kill in
// the middle of a put storm (no acknowledged high-importance object may be
// lost, and anti-entropy must restore full replication), and to a gossip
// partition (the repair layer must re-replicate around the apparently-dead
// node, and membership must re-converge after the heal). Both run real
// servers over real loopback TCP, with WAL-backed persistence, so the kill
// test also proves restart-from-WAL rejoins cleanly.

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"besteffs/internal/blob"
	"besteffs/internal/client"
	"besteffs/internal/faultnet"
	"besteffs/internal/importance"
	"besteffs/internal/journal"
	"besteffs/internal/member"
	"besteffs/internal/object"
	"besteffs/internal/policy"
	"besteffs/internal/repair"
	"besteffs/internal/secure"
	"besteffs/internal/server"
)

const (
	nodeCapacity  = 8 << 20
	replThreshold = 0.8
)

// chaosNode is one clustered storage node under test: server + WAL +
// membership agent + repair manager, the same wiring besteffsd does.
type chaosNode struct {
	t    *testing.T
	dir  string
	addr string // fixed on first start; restarts rebind it

	srv     *server.Server
	agent   *member.Agent
	mgr     *repair.Manager
	wal     *journal.WAL
	cancel  context.CancelFunc
	done    chan error
	stopped bool

	// tls runs the node with mutual-auth TLS on every path (accept loop,
	// gossip, repair dials), the -tls besteffsd wiring. The certificate
	// lives under the data dir, so restarts keep the device identity.
	tls       bool
	clientTLS *tls.Config

	// gossipDial lets the partition test inject faults into the
	// membership transport; nil uses plain TCP.
	gossipDial func(self string, dial func(string) (net.Conn, error)) func(string) (net.Conn, error)
}

// dial opens a client connection to the node, over TLS when the node
// requires it.
func (n *chaosNode) dial(timeout time.Duration) (*client.Client, error) {
	cfg := client.DefaultConfig()
	cfg.TLS = n.clientTLS
	return client.DialConfig(n.addr, timeout, cfg)
}

// start boots (or reboots) the node from its data directory: restore from
// the WAL, listen, attach membership and repair, serve.
func (n *chaosNode) start(seeds []string) {
	n.t.Helper()
	n.stopped = false
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	files, err := blob.NewFileStore(filepath.Join(n.dir, "blobs"))
	if err != nil {
		n.t.Fatalf("blob store: %v", err)
	}
	wal, err := journal.OpenWAL(filepath.Join(n.dir, server.WALDirName))
	if err != nil {
		n.t.Fatalf("open wal: %v", err)
	}
	n.wal = wal
	// Listen before building the server so the node's final address can be
	// stamped onto its spans (WithNodeAddr), same as besteffsd -advertise.
	listenAddr := n.addr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		n.t.Fatalf("listen %s: %v", listenAddr, err)
	}
	n.addr = l.Addr().String()
	if n.tls {
		cert, err := secure.LoadOrCreate(filepath.Join(n.dir, "tls"))
		if err != nil {
			n.t.Fatalf("node certificate: %v", err)
		}
		l = tls.NewListener(l, secure.ServerConfig(cert, nil))
		n.clientTLS = secure.ClientConfig(cert, nil)
	}
	srv, err := server.New(server.EngineConfig{Capacity: nodeCapacity, Policy: policy.TemporalImportance{}},
		server.WithBlobStore(files), server.WithWAL(wal), server.WithLogger(quiet),
		server.WithNodeAddr(n.addr))
	if err != nil {
		n.t.Fatalf("server.New: %v", err)
	}
	n.srv = srv
	if _, err := srv.RestoreDir(n.dir); err != nil {
		n.t.Fatalf("restore %s: %v", n.dir, err)
	}

	cfg := member.Config{
		Addr: n.addr,
		Self: func() (float64, int64, float64) {
			sm := srv.Unit().SampleAt(srv.Now())
			return sm.Boundary, srv.Unit().Capacity() - srv.Unit().Used(), sm.Density
		},
		Seeds:    seeds,
		Interval: 25 * time.Millisecond,
		Logger:   quiet,
		Seed:     1,
		Registry: srv.Metrics(),
		Events:   srv.Events(),
	}
	if n.gossipDial != nil {
		cfg.Dial = n.gossipDial(n.addr, func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, time.Second)
		})
	} else if n.tls {
		cfg.Dial = secure.Dialer(n.clientTLS, time.Second)
	}
	agent, err := member.NewAgent(cfg)
	if err != nil {
		n.t.Fatalf("member.NewAgent: %v", err)
	}
	n.agent = agent
	srv.SetMembership(agent)

	rcfg := repair.Config{
		Replicas:  2,
		Threshold: replThreshold,
		Interval:  time.Hour, // passes run manually via PassNow
		SelfAddr:  n.addr,
		Local:     srv,
		Peers:     agent,
		Logger:    quiet,
		Registry:  srv.Metrics(),
		Events:    srv.Events(),
	}
	if n.tls {
		ccfg := client.DefaultConfig()
		ccfg.TLS = n.clientTLS
		rcfg.Connect = func(addr string) (*client.Client, error) {
			return client.DialConfig(addr, time.Second, ccfg)
		}
	}
	mgr, err := repair.NewManager(rcfg)
	if err != nil {
		n.t.Fatalf("repair.NewManager: %v", err)
	}
	n.mgr = mgr
	srv.SetRepair(mgr)

	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.done = make(chan error, 1)
	go agent.Run(ctx)
	go func() { n.done <- n.srv.Serve(ctx, l) }()
}

// kill stops the node abruptly: no final checkpoint, so the restart path
// has to replay the WAL. The WAL is synced and closed (one process cannot
// keep two writers on the same segments), which a real crash also
// guarantees for every acknowledged record -- puts sync before the ack.
func (n *chaosNode) kill() {
	n.t.Helper()
	if n.stopped {
		return
	}
	n.stopped = true
	n.cancel()
	if err := <-n.done; err != nil {
		n.t.Errorf("Serve on %s: %v", n.addr, err)
	}
	if err := n.mgr.Close(); err != nil {
		n.t.Errorf("close repair: %v", err)
	}
	if err := n.wal.Sync(); err != nil {
		n.t.Errorf("sync wal: %v", err)
	}
	if err := n.wal.Close(); err != nil {
		n.t.Errorf("close wal: %v", err)
	}
}

func startCluster(t *testing.T, gossipDial func(self string, dial func(string) (net.Conn, error)) func(string) (net.Conn, error)) []*chaosNode {
	return startClusterTLS(t, gossipDial, false)
}

func startClusterTLS(t *testing.T, gossipDial func(self string, dial func(string) (net.Conn, error)) func(string) (net.Conn, error), useTLS bool) []*chaosNode {
	t.Helper()
	nodes := make([]*chaosNode, 3)
	var seeds []string
	for i := range nodes {
		nodes[i] = &chaosNode{t: t, dir: t.TempDir(), gossipDial: gossipDial, tls: useTLS}
		nodes[i].start(seeds)
		if i == 0 {
			seeds = []string{nodes[0].addr}
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.kill()
		}
		// A failed chaos test dumps every node's flight recorder: the
		// black box that says what each node decided while the test saw
		// only the wire. The rings outlive kill(), so this works even for
		// nodes that died mid-test.
		if t.Failed() {
			for _, n := range nodes {
				t.Logf("=== flight recorder %s (%d events) ===", n.addr, n.srv.Events().Len())
				var buf strings.Builder
				n.srv.Events().Dump(&buf)
				t.Log(buf.String())
			}
		}
	})
	waitFor(t, 10*time.Second, func() bool {
		for _, n := range nodes {
			if len(n.agent.AlivePeers()) != len(nodes)-1 {
				return false
			}
		}
		return true
	}, "membership convergence")
	return nodes
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// holders returns which of the given nodes hold id above the replication
// threshold, asking each node's index over the wire.
func holders(t *testing.T, ctx context.Context, nodes []*chaosNode, id object.ID) []string {
	t.Helper()
	var out []string
	for _, n := range nodes {
		c, err := n.dial(time.Second)
		if err != nil {
			continue // dead node: holds nothing reachable
		}
		entries, err := c.IndexCtx(ctx, replThreshold)
		c.Close()
		if err != nil {
			t.Fatalf("index on %s: %v", n.addr, err)
		}
		for _, e := range entries {
			if e.ID == id {
				out = append(out, n.addr)
				break
			}
		}
	}
	return out
}

// repairUntilConverged runs anti-entropy passes on the given nodes until a
// full round reports no deficit, then returns the total pulls across all
// rounds.
func repairUntilConverged(t *testing.T, ctx context.Context, nodes []*chaosNode) int {
	t.Helper()
	totalPulled := 0
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		deficit := 0
		for _, n := range nodes {
			pass, err := n.mgr.PassNow(ctx)
			if err != nil {
				t.Fatalf("repair pass on %s: %v", n.addr, err)
			}
			totalPulled += pass.Pulled
			deficit += pass.UnderReplicated + pass.Pending
		}
		if deficit == 0 {
			return totalPulled
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("anti-entropy never converged to zero deficit")
	return totalPulled
}

func TestKillOneOfThreeLosesNoAcknowledgedObject(t *testing.T) {
	testKillOneOfThree(t, false)
}

// TestKillOneOfThreeLosesNoAcknowledgedObjectTLS reruns the kill chaos test
// with every connection -- gossip, replication, repair pulls, clients --
// over mutual-auth TLS, including the victim's restart reloading its
// certificate identity from disk.
func TestKillOneOfThreeLosesNoAcknowledgedObjectTLS(t *testing.T) {
	testKillOneOfThree(t, true)
}

func testKillOneOfThree(t *testing.T, useTLS bool) {
	if testing.Short() {
		t.Skip("multi-node chaos test")
	}
	ctx := context.Background()
	nodes := startClusterTLS(t, nil, useTLS)

	seedOpts := []client.ClusterOption{}
	if useTLS {
		ccfg := client.DefaultConfig()
		ccfg.TLS = nodes[0].clientTLS
		seedOpts = append(seedOpts, client.WithClientConfig(ccfg))
	}
	cc, err := client.DialClusterSeed(ctx, nodes[0].addr, time.Second,
		rand.New(rand.NewSource(1)), seedOpts...)
	if err != nil {
		t.Fatalf("DialClusterSeed: %v", err)
	}
	defer cc.Close()

	// Pin one object directly onto the victim so its death certainly
	// orphans a copy; ingest replication pushes the second copy to a peer
	// before the ack returns.
	victim := nodes[1]
	vc, err := victim.dial(time.Second)
	if err != nil {
		t.Fatalf("dial victim: %v", err)
	}
	pinned := object.ID("vital/pinned")
	if _, err := vc.PutCtx(ctx, client.PutRequest{
		ID:         pinned,
		Importance: importance.Constant{Level: 1},
		Payload:    payloadFor(pinned),
	}); err != nil {
		t.Fatalf("pinned put: %v", err)
	}
	vc.Close()
	acked := []object.ID{pinned}

	// Batch storm: high-importance puts through the placement walk, with
	// the victim killed in the middle. Only successful puts count as
	// acknowledged; failures during the death window are the client's
	// problem to retry, not the durability contract's.
	put := func(id object.ID) {
		t.Helper()
		req := client.PutRequest{
			ID:         id,
			Importance: importance.Constant{Level: 1},
			Payload:    payloadFor(id),
		}
		for attempt := 0; ; attempt++ {
			if _, err := cc.PutCtx(ctx, req); err == nil {
				acked = append(acked, id)
				return
			} else if attempt >= 20 {
				t.Fatalf("put %s never succeeded: %v", id, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	for i := 0; i < 8; i++ {
		put(object.ID(fmt.Sprintf("vital/pre-%02d", i)))
	}
	victim.kill()
	for i := 0; i < 8; i++ {
		put(object.ID(fmt.Sprintf("vital/post-%02d", i)))
	}

	// Zero acknowledged loss: every acked object must be retrievable from
	// some survivor, payload intact.
	survivors := []*chaosNode{nodes[0], nodes[2]}
	for _, id := range acked {
		if got := fetchFromAny(t, ctx, survivors, id); got == nil {
			t.Errorf("acknowledged object %s lost after killing one of three nodes", id)
		} else if string(got) != string(payloadFor(id)) {
			t.Errorf("object %s came back corrupted", id)
		}
	}

	// Anti-entropy on the survivors restores R=2 with the victim dead.
	pulled := repairUntilConverged(t, ctx, survivors)
	if pulled == 0 {
		t.Error("survivors pulled nothing, but the dead node held the pinned object's only indexed copy")
	}
	for _, id := range acked {
		if h := holders(t, ctx, survivors, id); len(h) < 2 {
			t.Errorf("object %s has %d live holders after repair, want 2 (held by %v)", id, len(h), h)
		}
	}

	// The victim restarts from its WAL and rejoins; the cluster converges
	// with it back in.
	victim.start([]string{nodes[0].addr})
	waitFor(t, 10*time.Second, func() bool {
		return len(victim.agent.AlivePeers()) == 2 &&
			len(nodes[0].agent.AlivePeers()) == 2 && len(nodes[2].agent.AlivePeers()) == 2
	}, "victim rejoin")
	repairUntilConverged(t, ctx, nodes)
	for _, id := range acked {
		if h := holders(t, ctx, nodes, id); len(h) < 2 {
			t.Errorf("object %s has %d holders after rejoin, want >= 2", id, len(h))
		}
	}

	// The wire-visible repair counters back the story: passes ran, pulls
	// happened, and nobody is left under-replicated.
	for _, n := range survivors {
		c, err := n.dial(time.Second)
		if err != nil {
			t.Fatalf("dial %s: %v", n.addr, err)
		}
		st, err := c.RepairStatusCtx(ctx)
		c.Close()
		if err != nil {
			t.Fatalf("repair status on %s: %v", n.addr, err)
		}
		if st.Passes == 0 {
			t.Errorf("%s reports zero repair passes", n.addr)
		}
		if st.UnderReplicated != 0 || st.Pending != 0 {
			t.Errorf("%s still reports deficit: under_replicated=%d pending=%d",
				n.addr, st.UnderReplicated, st.Pending)
		}
	}
}

func TestPartitionHealReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos test")
	}
	ctx := context.Background()
	inj := faultnet.NewInjector(11, faultnet.Plan{})
	part := inj.NewPartition()
	nodes := startCluster(t, func(self string, dial func(string) (net.Conn, error)) func(string) (net.Conn, error) {
		return part.Dialer(self, dial)
	})

	// Store one critical object on node 0; ingest pushes the second copy
	// to one peer.
	id := object.ID("vital/split")
	c0, err := client.Dial(nodes[0].addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c0.PutCtx(ctx, client.PutRequest{
		ID:         id,
		Importance: importance.Constant{Level: 1},
		Payload:    payloadFor(id),
	}); err != nil {
		t.Fatalf("put: %v", err)
	}
	c0.Close()
	h := holders(t, ctx, nodes, id)
	if len(h) != 2 {
		t.Fatalf("ingest left %d holders %v, want 2", len(h), h)
	}

	// Partition the peer replica away at the gossip layer. The other two
	// nodes see it die; from their view the object is under-replicated,
	// and the non-holder must pull a new second copy.
	var holder, spare *chaosNode
	for _, n := range nodes[1:] {
		if n.addr == h[0] || n.addr == h[1] {
			holder = n
		} else {
			spare = n
		}
	}
	if holder == nil {
		// Node 0 holds the original; the push landed on nodes[1] or [2].
		t.Fatal("no peer holder found")
	}
	part.Block(holder.addr, nodes[0].addr)
	part.Block(holder.addr, spare.addr)
	connected := []*chaosNode{nodes[0], spare}
	waitFor(t, 10*time.Second, func() bool {
		return len(nodes[0].agent.AlivePeers()) == 1 && len(spare.agent.AlivePeers()) == 1 &&
			len(holder.agent.AlivePeers()) == 0
	}, "split detection")

	repairUntilConverged(t, ctx, connected)
	if h := holders(t, ctx, connected, id); len(h) != 2 {
		t.Fatalf("connected side has %d holders %v after repair, want 2", len(h), h)
	}

	// Heal: membership re-converges without restarts, and a full repair
	// round across all three finds nothing left to do (three copies is
	// over-replicated, never a deficit).
	part.Heal()
	waitFor(t, 15*time.Second, func() bool {
		for _, n := range nodes {
			if len(n.agent.AlivePeers()) != 2 {
				return false
			}
		}
		return true
	}, "re-convergence after heal")
	repairUntilConverged(t, ctx, nodes)
	if h := holders(t, ctx, nodes, id); len(h) < 2 {
		t.Fatalf("object has %d holders %v after heal, want >= 2", len(h), h)
	}
}

func payloadFor(id object.ID) []byte {
	out := make([]byte, 4096)
	copy(out, id)
	return out
}

func fetchFromAny(t *testing.T, ctx context.Context, nodes []*chaosNode, id object.ID) []byte {
	t.Helper()
	for _, n := range nodes {
		c, err := n.dial(time.Second)
		if err != nil {
			continue
		}
		o, err := c.GetCtx(ctx, id)
		c.Close()
		if err == nil {
			return o.Payload
		}
	}
	return nil
}
