package repair_test

// End-to-end proof of the distributed tracing layer: a single trace ID
// minted at the client covers an object's whole cluster life -- the put,
// the synchronous replication push it fans out, and the anti-entropy pull
// that later heals a deleted replica -- reassembled from the members'
// TRACE_DUMP rings exactly the way `besteffsctl trace` does it.

import (
	"context"
	"testing"
	"time"

	"besteffs/internal/client"
	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/telemetry"
)

// dumpTrace fans a TRACE_DUMP out to every node and returns the union of
// their rings for one trace, converted back to telemetry spans.
func dumpTrace(t *testing.T, ctx context.Context, nodes []*chaosNode, trace string) []telemetry.Span {
	t.Helper()
	var spans []telemetry.Span
	for _, n := range nodes {
		c, err := client.Dial(n.addr, time.Second)
		if err != nil {
			continue
		}
		res, err := c.TraceDumpCtx(ctx, trace)
		c.Close()
		if err != nil {
			t.Fatalf("trace dump on %s: %v", n.addr, err)
		}
		for _, s := range res.Spans {
			spans = append(spans, telemetry.Span{
				Trace:    s.Trace,
				ID:       s.ID,
				Parent:   s.Parent,
				Name:     s.Name,
				Node:     s.Node,
				Peer:     s.Peer,
				Start:    time.Unix(0, s.StartUnixNanos),
				Duration: time.Duration(s.DurationNanos),
				Note:     s.Note,
			})
		}
	}
	return spans
}

func TestTraceCoversPutReplicationAndRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos test")
	}
	bg := context.Background()
	nodes := startCluster(t, nil)

	// Everything below runs under one client-minted root trace.
	sc := telemetry.NewRoot()
	ctx := telemetry.NewContext(bg, sc)

	// Put a high-importance object on node 0; ingest replication pushes the
	// second copy to a peer before the ack, as a child hop of the put.
	id := object.ID("vital/traced")
	c0, err := client.Dial(nodes[0].addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c0.PutCtx(ctx, client.PutRequest{
		ID:         id,
		Importance: importance.Constant{Level: 1},
		Payload:    payloadFor(id),
	}); err != nil {
		t.Fatalf("put: %v", err)
	}
	c0.Close()
	h := holders(t, bg, nodes, id)
	if len(h) != 2 {
		t.Fatalf("ingest left %d holders %v, want 2", len(h), h)
	}

	// Delete the replica copy; the deficit makes the next anti-entropy
	// round pull it back. The passes run under the same trace, so the
	// repair hops (INDEX_DIFF exchanges, the GET that fetches the payload)
	// join the put's tree.
	var peerHolder *chaosNode
	for _, n := range nodes {
		if n.addr != nodes[0].addr && (n.addr == h[0] || n.addr == h[1]) {
			peerHolder = n
		}
	}
	if peerHolder == nil {
		t.Fatal("replica landed nowhere")
	}
	ch, err := client.Dial(peerHolder.addr, time.Second)
	if err != nil {
		t.Fatalf("dial holder: %v", err)
	}
	if err := ch.DeleteCtx(bg, id); err != nil {
		t.Fatalf("delete replica: %v", err)
	}
	ch.Close()

	pulled := 0
	deadline := time.Now().Add(15 * time.Second)
	for pulled == 0 && time.Now().Before(deadline) {
		for _, n := range nodes {
			pass, err := n.mgr.PassNow(ctx)
			if err != nil {
				t.Fatalf("repair pass on %s: %v", n.addr, err)
			}
			pulled += pass.Pulled
		}
	}
	if pulled == 0 {
		t.Fatal("anti-entropy never pulled the deleted replica back")
	}

	// Reassemble the trace from every node's ring, the way besteffsctl
	// trace does, and check the cross-node story is all there.
	spans := dumpTrace(t, bg, nodes, sc.Trace)
	names := make(map[string]int)
	nodesSeen := make(map[string]bool)
	for _, sp := range spans {
		if sp.Trace != sc.Trace {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.Trace, sc.Trace)
		}
		names[sp.Name]++
		nodesSeen[sp.Node] = true
	}
	for _, want := range []string{"put", "replicate", "index_delta", "get"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
	if len(nodesSeen) < 2 {
		t.Errorf("trace covers %d node(s) %v, want hops on at least 2", len(nodesSeen), nodesSeen)
	}

	roots := telemetry.Assemble(spans)
	if got := telemetry.CountSpans(roots); got < 3 {
		t.Fatalf("assembled tree has %d spans, want >= 3", got)
	}
	// The replication push must hang off the put: the server threads the
	// put's span context into its outbound REPLICATE, so the peer's span
	// names the put as parent.
	foundChildPush := false
	for _, r := range roots {
		if r.Span.Name != "put" {
			continue
		}
		for _, c := range r.Children {
			if c.Span.Name == "replicate" {
				foundChildPush = true
			}
		}
	}
	if !foundChildPush {
		t.Error("no replicate span parented under the put span")
	}

	// The flight recorder saw the same story: a push on the origin, a pull
	// on the healer, both stamped with the trace.
	wantEvent := func(n *chaosNode, kind telemetry.EventKind) bool {
		for _, e := range n.srv.Events().Snapshot() {
			if e.Kind == kind && e.ID == string(id) && e.Trace == sc.Trace {
				return true
			}
		}
		return false
	}
	if !wantEvent(nodes[0], telemetry.EventReplicaPush) {
		t.Error("origin node recorded no replica-push event with the trace ID")
	}
	pullSeen := false
	for _, n := range nodes {
		if wantEvent(n, telemetry.EventReplicaPull) {
			pullSeen = true
		}
	}
	if !pullSeen {
		t.Error("no node recorded a replica-pull event with the trace ID")
	}
	// EVENTS over the wire serves the same records besteffsctl events reads.
	c, err := client.Dial(nodes[0].addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	evres, err := c.EventsCtx(bg, 0)
	c.Close()
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	gotPush := false
	for _, e := range evres.Events {
		if telemetry.EventKind(e.Kind) == telemetry.EventReplicaPush && e.Trace == sc.Trace {
			gotPush = true
		}
	}
	if !gotPush {
		t.Error("EVENTS dump on the origin is missing the traced replica push")
	}
}
