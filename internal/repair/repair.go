// Package repair keeps high-importance objects replicated across the
// cluster. It has two halves. The synchronous half (PushSync) runs at
// ingest: an object whose initial importance clears the replication
// threshold is pushed to R-1 live peers -- chosen by the Section 5.3 rule,
// lowest advertised importance boundary first -- before the put is
// acknowledged, so an acknowledged high-importance object survives any
// single node death. The asynchronous half (Run / PassNow) is anti-entropy:
// each pass exchanges per-object indexes (ID, version, payload CRC, size,
// initial importance, age) with every live peer, counts how many replicas
// each high-importance object has, and pulls the missing ones back --
// highest importance first, under a per-pass byte budget, with divergent
// copies resolved by wire.Supersedes so every replica converges without
// coordination.
//
// Repair is pull-driven: each node repairs only its own copy set. A node
// that should hold an object (it ranks among the deficit's deterministic
// fill-in order) pulls it; nobody pushes during a pass. Because every node
// runs the same ranking over the same exchanged indexes, the cluster
// converges to R holders per object without any node directing another.
package repair

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"time"

	"besteffs/internal/client"
	"besteffs/internal/metrics"
	"besteffs/internal/object"
	"besteffs/internal/telemetry"
	"besteffs/internal/wire"
)

// Local is the node's own storage as the repair loop sees it; implemented
// by server.Server.
type Local interface {
	// IndexEntries summarizes every resident whose initial importance is at
	// or above threshold.
	IndexEntries(threshold float64) []wire.IndexEntry
	// ReplicaSource packages a resident for pushing to a peer.
	ReplicaSource(id object.ID) (*wire.Replicate, error)
	// StoreReplica admits a replica received from a peer. It reports false
	// when the local copy already supersedes the incoming one (not an
	// error: anti-entropy races are expected).
	StoreReplica(rep *wire.Replicate) (bool, error)
}

// Peers is the membership view; implemented by member.Agent.
type Peers interface {
	// AlivePeers lists the live cluster members, self excluded.
	AlivePeers() []wire.MemberInfo
}

// ConfigSource supplies the cluster-wide config negotiated at gossip join;
// implemented by member.Agent. When present and non-zero it overrides the
// flag-derived Replicas and Threshold, so repair enforces what the cluster
// agreed on, not what this node booted with.
type ConfigSource interface {
	ClusterConfig() wire.ClusterConfig
}

// Config configures a Manager. Local, Peers and SelfAddr are required.
type Config struct {
	// Replicas is R, the copies each above-threshold object should have
	// (default 2; 1 disables replication).
	Replicas int
	// Threshold is the initial importance at or above which an object is
	// replicated (default 0.5).
	Threshold float64
	// Interval is the anti-entropy pass period (default 5s).
	Interval time.Duration
	// MaxBytesPerPass bounds the payload bytes pulled per pass (default
	// 32 MiB); the remainder is reported as pending and picked up next
	// pass, highest importance first.
	MaxBytesPerPass int64
	// SelfAddr is this node's advertised address, excluded from peer
	// selection.
	SelfAddr string
	// DialTimeout bounds peer dials (default 2s).
	DialTimeout time.Duration

	Local    Local
	Peers    Peers
	Logger   *slog.Logger
	Registry *metrics.Registry
	// Events receives flight-recorder events for replica pushes and pulls;
	// nil disables recording (the Recorder is nil-safe).
	Events *telemetry.Recorder
	// Cluster, when set, overrides Replicas and Threshold with the live
	// cluster config (member.Agent); nil keeps the flag-derived values.
	Cluster ConfigSource
	// Connect overrides how peer clients are dialed (TLS clusters inject a
	// secure dial here); nil uses a cleartext client.Dial.
	Connect func(addr string) (*client.Client, error)
}

// repairMetrics are the repair counters on the node's metrics registry.
type repairMetrics struct {
	reg              *metrics.Registry
	pushed           *metrics.Counter
	pulled           *metrics.Counter
	pushFailures     *metrics.Counter
	passes           *metrics.Counter
	bytes            *metrics.Counter
	indexEntriesSent *metrics.Counter
	indexFullSyncs   *metrics.Counter
	underReplicated  *metrics.Gauge
	pending          *metrics.Gauge
	lastPass         *metrics.Gauge
}

// Per-peer series. Registration is idempotent and these paths are not hot
// (one replica transfer dwarfs one registry lookup), so the series are
// minted at the call site instead of being cached per peer.
func (rm *repairMetrics) peerPushed(peer string, d time.Duration) {
	rm.reg.Counter("besteffs_repair_peer_pushed_total",
		"replicas pushed at ingest, by peer", metrics.L("peer", peer)).Inc()
	rm.peerRTT(peer, d)
}

func (rm *repairMetrics) peerPulled(peer string, d time.Duration) {
	rm.reg.Counter("besteffs_repair_peer_pulled_total",
		"objects pulled by anti-entropy, by peer", metrics.L("peer", peer)).Inc()
	rm.peerRTT(peer, d)
}

func (rm *repairMetrics) peerFailure(peer string) {
	rm.reg.Counter("besteffs_repair_peer_failures_total",
		"failed repair exchanges (push, pull, or index), by peer",
		metrics.L("peer", peer)).Inc()
}

func (rm *repairMetrics) peerRTT(peer string, d time.Duration) {
	rm.reg.Histogram("besteffs_repair_peer_rtt_seconds",
		"round-trip time of successful repair exchanges, by peer",
		metrics.LatencyBuckets, metrics.L("peer", peer)).Observe(d.Seconds())
}

func newRepairMetrics(reg *metrics.Registry) repairMetrics {
	return repairMetrics{
		reg: reg,
		pushed: reg.Counter("besteffs_repair_pushed_total",
			"objects pushed to peers at ingest"),
		pulled: reg.Counter("besteffs_repair_pulled_total",
			"objects pulled by anti-entropy passes"),
		pushFailures: reg.Counter("besteffs_repair_push_failures_total",
			"failed ingest-time replica pushes"),
		passes: reg.Counter("besteffs_repair_passes_total",
			"completed anti-entropy passes"),
		bytes: reg.Counter("besteffs_repair_bytes_total",
			"payload bytes pulled by repair"),
		indexEntriesSent: reg.Counter("besteffs_repair_index_entries_sent_total",
			"index entries (upserts plus removals) shipped by delta exchanges"),
		indexFullSyncs: reg.Counter("besteffs_repair_index_full_syncs_total",
			"index exchanges that fell back to a full snapshot"),
		underReplicated: reg.Gauge("besteffs_repair_under_replicated",
			"objects below the replication factor at the last pass"),
		pending: reg.Gauge("besteffs_repair_pending",
			"repairs deferred past the last pass (budget or failure)"),
		lastPass: reg.Gauge("besteffs_repair_last_pass_seconds",
			"duration of the most recent anti-entropy pass"),
	}
}

// Manager runs replication and anti-entropy for one node.
type Manager struct {
	cfg Config
	log *slog.Logger
	met repairMetrics

	// clients caches one connection per peer address; a transport failure
	// evicts the entry so the next use redials.
	clientMu sync.Mutex
	clients  map[string]*client.Client

	// peerSync tracks, per peer, the last index snapshot that peer
	// acknowledged, so each pass sends only the delta (see PassNow).
	syncMu   sync.Mutex
	peerSync map[string]*peerSync
}

// peerSync is the caller side of the incremental index exchange with one
// peer: the last acknowledged sequence and the snapshot it covered.
type peerSync struct {
	seq       uint64
	acked     bool
	threshold float64
	sent      map[object.ID]wire.IndexEntry
}

// NewManager validates cfg and returns a Manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Local == nil {
		return nil, errors.New("repair: nil Local")
	}
	if cfg.Peers == nil {
		return nil, errors.New("repair: nil Peers")
	}
	if cfg.SelfAddr == "" {
		return nil, errors.New("repair: empty SelfAddr")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.5
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.MaxBytesPerPass <= 0 {
		cfg.MaxBytesPerPass = 32 << 20
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.Connect == nil {
		timeout := cfg.DialTimeout
		cfg.Connect = func(addr string) (*client.Client, error) {
			return client.Dial(addr, timeout)
		}
	}
	return &Manager{
		cfg:      cfg,
		log:      cfg.Logger,
		met:      newRepairMetrics(reg),
		clients:  make(map[string]*client.Client),
		peerSync: make(map[string]*peerSync),
	}, nil
}

// Threshold returns the replication threshold the cluster currently
// enforces; the server pre-filters ingest pushes with it.
func (m *Manager) Threshold() float64 {
	if m.cfg.Cluster != nil {
		if cc := m.cfg.Cluster.ClusterConfig(); !cc.IsZero() {
			return cc.Threshold
		}
	}
	return m.cfg.Threshold
}

// Replicas returns the replication factor R the cluster currently enforces.
func (m *Manager) Replicas() int {
	if m.cfg.Cluster != nil {
		if cc := m.cfg.Cluster.ClusterConfig(); !cc.IsZero() && cc.Replicas > 0 {
			return int(cc.Replicas)
		}
	}
	return m.cfg.Replicas
}

// Status reports the repair configuration and counters.
func (m *Manager) Status() *wire.RepairStatusResult {
	return &wire.RepairStatusResult{
		Replicas:        uint32(m.Replicas()),
		Threshold:       m.Threshold(),
		Pushed:          uint64(m.met.pushed.Value()),
		Pulled:          uint64(m.met.pulled.Value()),
		PushFailures:    uint64(m.met.pushFailures.Value()),
		Passes:          uint64(m.met.passes.Value()),
		UnderReplicated: uint64(m.met.underReplicated.Value()),
		Pending:         uint64(m.met.pending.Value()),
		BytesRepaired:   uint64(m.met.bytes.Value()),
		LastPassNanos:   int64(m.met.lastPass.Value() * float64(time.Second)),
	}
}

// peerClient returns a cached connection to addr, dialing if needed. The
// dial happens OUTSIDE clientMu -- holding a mutex across a network
// connect would stall every other peer lookup (including cache hits) for
// the duration of a slow or timing-out dial -- so two repairers can race
// to the same address; the loser's connection is closed and the winner's
// cached.
func (m *Manager) peerClient(addr string) (*client.Client, error) {
	m.clientMu.Lock()
	c, ok := m.clients[addr]
	m.clientMu.Unlock()
	if ok {
		return c, nil
	}
	c, err := m.cfg.Connect(addr)
	if err != nil {
		return nil, err
	}
	m.clientMu.Lock()
	if cached, ok := m.clients[addr]; ok {
		m.clientMu.Unlock()
		c.Close()
		return cached, nil
	}
	m.clients[addr] = c
	m.clientMu.Unlock()
	return c, nil
}

// dropClient evicts a peer connection after a transport failure.
func (m *Manager) dropClient(addr string, c *client.Client) {
	m.clientMu.Lock()
	if m.clients[addr] == c {
		delete(m.clients, addr)
	}
	m.clientMu.Unlock()
	c.Close()
}

// Close drops every cached peer connection.
func (m *Manager) Close() error {
	m.clientMu.Lock()
	defer m.clientMu.Unlock()
	var first error
	for addr, c := range m.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(m.clients, addr)
	}
	return first
}

// alivePeers lists live peers excluding self, lowest advertised boundary
// first -- the replication flavor of the Section 5.3 walk: replicas land
// where they preempt the least importance.
func (m *Manager) alivePeers() []wire.MemberInfo {
	var peers []wire.MemberInfo
	for _, mi := range m.cfg.Peers.AlivePeers() {
		if mi.Addr == "" || mi.Addr == m.cfg.SelfAddr {
			continue
		}
		peers = append(peers, mi)
	}
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].Boundary != peers[j].Boundary {
			return peers[i].Boundary < peers[j].Boundary
		}
		return peers[i].Addr < peers[j].Addr
	})
	return peers
}

// PushSync pushes one freshly admitted object to R-1 live peers and
// reports how many copies now exist cluster-wide (1 = local only). It
// walks the peers lowest-boundary-first, skipping past failures until R-1
// pushes succeed or the peer list is exhausted; failures are counted, not
// fatal -- replication is best-effort and the anti-entropy pass backfills
// what ingest could not place.
func (m *Manager) PushSync(ctx context.Context, rep *wire.Replicate) int {
	copies := 1
	want := m.Replicas() - 1
	if want <= 0 {
		return copies
	}
	sc, _ := telemetry.FromContext(ctx)
	for _, peer := range m.alivePeers() {
		if copies-1 >= want {
			break
		}
		if ctx.Err() != nil {
			break
		}
		c, err := m.peerClient(peer.Addr)
		if err != nil {
			m.met.pushFailures.Inc()
			m.met.peerFailure(peer.Addr)
			m.log.Warn("replica push dial failed", "peer", peer.Addr, "id", rep.ID, "err", err)
			continue
		}
		start := time.Now()
		if _, err := c.ReplicateCtx(ctx, rep); err != nil {
			m.met.pushFailures.Inc()
			m.met.peerFailure(peer.Addr)
			if !isRemoteVerdict(err) {
				m.dropClient(peer.Addr, c)
			}
			m.log.Warn("replica push failed", "peer", peer.Addr, "id", rep.ID, "err", err)
			continue
		}
		m.met.pushed.Inc()
		m.met.peerPushed(peer.Addr, time.Since(start))
		m.cfg.Events.Record(telemetry.Event{
			Kind: telemetry.EventReplicaPush, ID: string(rep.ID),
			Peer: peer.Addr, Trace: sc.Trace, Importance: rep.Importance.At(0),
		})
		copies++
	}
	return copies
}

// Recover fetches the best available replica of id from the live peers --
// the synchronous path behind corrupt-get healing: the server quarantines
// the damaged copy, recovers the object here, and serves it. Every live
// peer is asked; divergent answers resolve by wire.Supersedes.
func (m *Manager) Recover(ctx context.Context, id object.ID) (*wire.Replicate, error) {
	var best *wire.Replicate
	var bestCRC uint32
	for _, peer := range m.alivePeers() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := m.peerClient(peer.Addr)
		if err != nil {
			continue
		}
		o, err := c.GetCtx(ctx, id)
		if err != nil {
			if !isRemoteVerdict(err) {
				m.dropClient(peer.Addr, c)
			}
			continue
		}
		crc := crc32.ChecksumIEEE(o.Payload)
		if best == nil || wire.Supersedes(o.Version, best.Version, crc, bestCRC) {
			best = &wire.Replicate{
				ID:         o.ID,
				Owner:      o.Owner,
				Class:      o.Class,
				Version:    o.Version,
				Importance: o.Importance,
				AgeNanos:   o.Age.Nanoseconds(),
				Payload:    o.Payload,
			}
			bestCRC = crc
		}
	}
	if best == nil {
		return nil, fmt.Errorf("repair: no reachable replica of %s", id)
	}
	return best, nil
}

// isRemoteVerdict reports whether err is an answer from a live peer rather
// than a transport failure; verdict errors keep the cached connection.
func isRemoteVerdict(err error) bool {
	return errors.Is(err, client.ErrNotFound) || errors.Is(err, client.ErrDuplicate) ||
		errors.Is(err, client.ErrUnexpected)
}

// Run executes anti-entropy passes every Interval until ctx is cancelled.
func (m *Manager) Run(ctx context.Context) {
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			pass, err := m.PassNow(ctx)
			if err != nil {
				if ctx.Err() == nil {
					m.log.Error("repair pass", "err", err)
				}
				continue
			}
			if pass.Pulled > 0 || pass.Pending > 0 {
				m.log.Info("repair pass",
					"peers", pass.Peers, "under_replicated", pass.UnderReplicated,
					"pulled", pass.Pulled, "pending", pass.Pending, "bytes", pass.Bytes)
			}
		}
	}
}

// Pass summarizes one anti-entropy pass.
type Pass struct {
	// Peers is how many live peers answered the index exchange.
	Peers int
	// UnderReplicated is how many above-threshold objects this node saw
	// below R holders (including divergent copies needing convergence).
	UnderReplicated int
	// Pulled is how many objects this node pulled.
	Pulled int
	// Pending is how many pulls were deferred (byte budget) or failed.
	Pending int
	// Bytes is the payload bytes pulled.
	Bytes int64
	// IndexEntriesSent counts index entries (upserts plus removals) shipped
	// to peers this pass; zero once the cluster is converged and quiet.
	IndexEntriesSent int
	// FullSyncs counts peers that needed a full index snapshot this pass
	// (first contact, restart on either side, or threshold change).
	FullSyncs int
}

// peerDiff is one peer's answer to the index exchange.
type peerDiff struct {
	addr    string
	missing map[object.ID]wire.IndexEntry
	need    map[object.ID]bool
}

// pullItem is one object this node decided to pull.
type pullItem struct {
	entry wire.IndexEntry // the superseding-est copy advertised by any peer
	from  string          // a peer holding that copy
}

// PassNow runs one anti-entropy pass: exchange indexes with every live
// peer, decide which deficits this node is responsible for, and pull those
// objects highest-importance-first within the byte budget.
func (m *Manager) PassNow(ctx context.Context) (Pass, error) {
	var pass Pass
	start := time.Now()
	// Every pass runs under a trace: the index exchanges and pulls below
	// join whatever span context the caller supplied (the 3-node tests
	// thread a put's trace through to its eventual repair), or a fresh root
	// so unsolicited passes are still reconstructable with `besteffsctl
	// trace`.
	if _, ok := telemetry.FromContext(ctx); !ok {
		ctx = telemetry.NewContext(ctx, telemetry.NewRoot())
	}
	threshold := m.Threshold()
	local := m.cfg.Local.IndexEntries(threshold)
	localByID := make(map[object.ID]wire.IndexEntry, len(local))
	for _, e := range local {
		localByID[e.ID] = e
	}

	peers := m.alivePeers()
	var diffs []peerDiff
	for _, peer := range peers {
		if err := ctx.Err(); err != nil {
			return pass, err
		}
		c, err := m.peerClient(peer.Addr)
		if err != nil {
			m.met.peerFailure(peer.Addr)
			m.log.Warn("repair index exchange dial failed", "peer", peer.Addr, "err", err)
			continue
		}
		exchangeStart := time.Now()
		res, sent, full, err := m.exchangeDelta(ctx, c, peer.Addr, threshold, local, localByID)
		pass.IndexEntriesSent += sent
		if full {
			pass.FullSyncs++
			m.met.indexFullSyncs.Inc()
		}
		m.met.indexEntriesSent.Add(int64(sent))
		if err != nil {
			m.met.peerFailure(peer.Addr)
			if !isRemoteVerdict(err) {
				m.dropClient(peer.Addr, c)
			}
			m.log.Warn("repair index exchange failed", "peer", peer.Addr, "err", err)
			continue
		}
		m.met.peerRTT(peer.Addr, time.Since(exchangeStart))
		d := peerDiff{
			addr:    peer.Addr,
			missing: make(map[object.ID]wire.IndexEntry, len(res.Missing)),
			need:    make(map[object.ID]bool, len(res.Need)),
		}
		for _, e := range res.Missing {
			d.missing[e.ID] = e
		}
		for _, id := range res.Need {
			d.need[id] = true
		}
		diffs = append(diffs, d)
	}
	pass.Peers = len(diffs)

	pulls := m.planPulls(localByID, diffs, &pass)

	// Highest importance first: when the budget cuts the pass short, what
	// the paper says matters most is what got repaired.
	sort.Slice(pulls, func(i, j int) bool {
		if pulls[i].entry.Initial != pulls[j].entry.Initial {
			return pulls[i].entry.Initial > pulls[j].entry.Initial
		}
		return pulls[i].entry.ID < pulls[j].entry.ID
	})
	var budget int64
	for _, p := range pulls {
		if err := ctx.Err(); err != nil {
			return pass, err
		}
		if budget+p.entry.Size > m.cfg.MaxBytesPerPass && budget > 0 {
			pass.Pending++
			continue
		}
		n, err := m.pull(ctx, p)
		if err != nil {
			pass.Pending++
			m.log.Warn("repair pull failed", "id", p.entry.ID, "peer", p.from, "err", err)
			continue
		}
		budget += n
		pass.Pulled++
		pass.Bytes += n
		m.met.pulled.Inc()
		m.met.bytes.Add(n)
	}

	m.met.passes.Inc()
	m.met.underReplicated.Set(float64(pass.UnderReplicated))
	m.met.pending.Set(float64(pass.Pending))
	m.met.lastPass.Set(time.Since(start).Seconds())
	return pass, nil
}

// entryChanged reports whether an index entry changed in a way peers must
// hear about. AgeNanos is deliberately excluded: it advances on every
// snapshot, and including it would mark every entry changed every pass,
// reducing the delta protocol to a full resend.
func entryChanged(a, b wire.IndexEntry) bool {
	return a.Version != b.Version || a.CRC != b.CRC ||
		a.Size != b.Size || a.Initial != b.Initial
}

// exchangeDelta runs the incremental index exchange with one peer: send
// what changed since the peer's last acknowledged snapshot (or a full
// snapshot on first contact / threshold change), fall back to a full resend
// when the peer asks for a resync, and record the acknowledged state only
// after a successful round trip -- a transport failure leaves the previous
// acknowledgment in place, and the sequence check on the peer sorts out
// whether the lost exchange was applied. It returns the peer's comparison,
// how many entries crossed the wire, and whether a full snapshot was sent.
func (m *Manager) exchangeDelta(ctx context.Context, c *client.Client, addr string, threshold float64, local []wire.IndexEntry, localByID map[object.ID]wire.IndexEntry) (*wire.IndexDeltaResult, int, bool, error) {
	m.syncMu.Lock()
	ps, ok := m.peerSync[addr]
	if !ok {
		ps = &peerSync{}
		m.peerSync[addr] = ps
	}
	full := !ps.acked || ps.threshold != threshold
	d := &wire.IndexDelta{
		From:      m.cfg.SelfAddr,
		Threshold: threshold,
		BaseSeq:   ps.seq,
		Seq:       ps.seq + 1,
		Full:      full,
	}
	if full {
		d.Upserts = local
	} else {
		for _, e := range local {
			if prev, ok := ps.sent[e.ID]; !ok || entryChanged(prev, e) {
				d.Upserts = append(d.Upserts, e)
			}
		}
		for id := range ps.sent {
			if _, held := localByID[id]; !held {
				d.Removed = append(d.Removed, id)
			}
		}
	}
	m.syncMu.Unlock()

	sent := len(d.Upserts) + len(d.Removed)
	res, err := c.IndexDeltaCtx(ctx, d)
	if err != nil {
		return nil, sent, full, err
	}
	if res.Resync && !full {
		// The peer's mirror is gone or stale (restart, eviction): resend
		// everything under the same sequence.
		full = true
		d = &wire.IndexDelta{
			From: m.cfg.SelfAddr, Threshold: threshold,
			Seq: d.Seq, Full: true, Upserts: local,
		}
		sent += len(local)
		if res, err = c.IndexDeltaCtx(ctx, d); err != nil {
			return nil, sent, full, err
		}
	}
	if res.Resync {
		return nil, sent, full, fmt.Errorf("repair: peer %s rejected a full index snapshot", addr)
	}
	m.syncMu.Lock()
	ps.seq = d.Seq
	ps.acked = true
	ps.threshold = threshold
	ps.sent = make(map[object.ID]wire.IndexEntry, len(localByID))
	for id, e := range localByID {
		ps.sent[id] = e
	}
	m.syncMu.Unlock()
	return res, sent, full, nil
}

// planPulls decides which objects this node pulls this pass. Three cases:
//
//   - An object we hold that a peer supersedes: pull the better copy
//     (convergence; we own our own copy's correctness).
//   - An object we lack, held by fewer than R nodes: the alive non-holders
//     rank themselves with a deterministic hash per object; the deficit's
//     worth of lowest ranks pull. Every non-holder computes the same
//     ranking from its own exchange, so exactly the deficit is filled
//     without coordination.
//   - An object we hold that is under-replicated counts toward the gauge
//     but is pulled by the nodes that lack it, on their own passes.
func (m *Manager) planPulls(localByID map[object.ID]wire.IndexEntry, diffs []peerDiff, pass *Pass) []pullItem {
	var pulls []pullItem
	replicas := m.Replicas()

	// Objects we hold: count holders, detect superseding peer copies.
	for id, mine := range localByID {
		holders := 1
		var better *pullItem
		for i := range diffs {
			d := &diffs[i]
			if !d.need[id] {
				holders++
			}
			if e, ok := d.missing[id]; ok && wire.Supersedes(e.Version, mine.Version, e.CRC, mine.CRC) {
				if better == nil || wire.Supersedes(e.Version, better.entry.Version, e.CRC, better.entry.CRC) {
					better = &pullItem{entry: e, from: d.addr}
				}
			}
		}
		if better != nil {
			pulls = append(pulls, *better)
			pass.UnderReplicated++
			continue
		}
		if holders < replicas {
			pass.UnderReplicated++
		}
	}

	// Objects we lack: holders are the peers advertising them in Missing.
	type absent struct {
		best    pullItem
		holders int
	}
	absents := make(map[object.ID]*absent)
	for i := range diffs {
		d := &diffs[i]
		for id, e := range d.missing {
			if _, held := localByID[id]; held {
				continue // handled above (divergence or already consistent)
			}
			a, ok := absents[id]
			if !ok {
				absents[id] = &absent{best: pullItem{entry: e, from: d.addr}, holders: 1}
				continue
			}
			a.holders++
			if wire.Supersedes(e.Version, a.best.entry.Version, e.CRC, a.best.entry.CRC) {
				a.best = pullItem{entry: e, from: d.addr}
			}
		}
	}
	for id, a := range absents {
		deficit := replicas - a.holders
		if deficit <= 0 {
			continue
		}
		pass.UnderReplicated++
		// Alive non-holders: self plus every answering peer that did not
		// advertise the object. Rank them by a per-object hash; the
		// lowest deficit ranks pull.
		nonHolders := []string{m.cfg.SelfAddr}
		for i := range diffs {
			if _, holds := diffs[i].missing[id]; !holds {
				nonHolders = append(nonHolders, diffs[i].addr)
			}
		}
		selfRank := 0
		selfKey := pullRank(id, m.cfg.SelfAddr)
		for _, addr := range nonHolders[1:] {
			if pullRank(id, addr) < selfKey {
				selfRank++
			}
		}
		if selfRank < deficit {
			pulls = append(pulls, a.best)
		}
	}
	return pulls
}

// pullRank orders the non-holders of one object deterministically; ties on
// the hash break by address so the order is total.
func pullRank(id object.ID, addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'|'})
	h.Write([]byte(addr))
	return h.Sum64()
}

// pull fetches one object from a peer and stores it locally, returning the
// payload bytes transferred.
func (m *Manager) pull(ctx context.Context, p pullItem) (int64, error) {
	c, err := m.peerClient(p.from)
	if err != nil {
		m.met.peerFailure(p.from)
		return 0, err
	}
	start := time.Now()
	o, err := c.GetCtx(ctx, p.entry.ID)
	if err != nil {
		m.met.peerFailure(p.from)
		if !isRemoteVerdict(err) {
			m.dropClient(p.from, c)
		}
		return 0, err
	}
	stored, err := m.cfg.Local.StoreReplica(&wire.Replicate{
		ID:         o.ID,
		Owner:      o.Owner,
		Class:      o.Class,
		Version:    o.Version,
		Importance: o.Importance,
		AgeNanos:   o.Age.Nanoseconds(),
		Payload:    o.Payload,
	})
	if err != nil {
		return 0, fmt.Errorf("store replica %s: %w", o.ID, err)
	}
	if !stored {
		return 0, nil // our copy caught up while the pull was in flight
	}
	m.met.peerPulled(p.from, time.Since(start))
	sc, _ := telemetry.FromContext(ctx)
	m.cfg.Events.Record(telemetry.Event{
		Kind: telemetry.EventReplicaPull, ID: string(o.ID),
		Peer: p.from, Trace: sc.Trace, Importance: o.Importance.At(0),
	})
	return int64(len(o.Payload)), nil
}
