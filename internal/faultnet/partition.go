package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Partition blocks traffic between named endpoints, modelling a network
// split: bidirectional (Block) or asymmetric (BlockOneWay), optionally
// healing itself after a deadline (BlockFor). Endpoints are plain strings
// -- typically listen addresses -- matched exactly. Probabilistic partial
// partitions draw from the owning Injector's seeded source, so a flaky
// split-brain window reproduces exactly from its seed.
//
// A Partition gates dials (Dialer) and per-message decisions (Blocked);
// it does not tear established connections -- compose with Plan.DropRate
// for that.
type Partition struct {
	inj   *Injector
	mu    sync.Mutex
	rules []partitionRule
}

// partitionRule blocks from->to until the deadline (zero = until Heal).
type partitionRule struct {
	from, to string
	until    time.Time
	// prob is the probability a crossing message is blocked; 1 is a full
	// partition.
	prob float64
}

// NewPartition returns an empty partition drawing probabilistic decisions
// from the injector's seeded source.
func (inj *Injector) NewPartition() *Partition {
	return &Partition{inj: inj}
}

// Block splits a and b bidirectionally until Heal.
func (p *Partition) Block(a, b string) { p.add(a, b, 0, 1); p.add(b, a, 0, 1) }

// BlockOneWay drops traffic from -> to only, leaving the reverse direction
// intact: the asymmetric failure mode where A can reach B but not vice
// versa.
func (p *Partition) BlockOneWay(from, to string) { p.add(from, to, 0, 1) }

// BlockFor splits a and b bidirectionally and heals the split after d.
func (p *Partition) BlockFor(a, b string, d time.Duration) {
	until := time.Now().Add(d)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules,
		partitionRule{from: a, to: b, until: until, prob: 1},
		partitionRule{from: b, to: a, until: until, prob: 1})
}

// BlockLossy drops traffic from -> to with probability prob until Heal,
// for degraded-but-not-severed links.
func (p *Partition) BlockLossy(from, to string, prob float64) {
	p.add(from, to, 0, prob)
}

func (p *Partition) add(from, to string, until time.Duration, prob float64) {
	var deadline time.Time
	if until > 0 {
		deadline = time.Now().Add(until)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, partitionRule{from: from, to: to, until: deadline, prob: prob})
}

// Heal removes every rule, ending the split immediately.
func (p *Partition) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = nil
}

// Blocked reports whether a message from -> to is blocked right now.
// Expired rules are pruned as a side effect, so a BlockFor split heals
// itself the first time anyone asks after the deadline.
func (p *Partition) Blocked(from, to string) bool {
	now := time.Now()
	p.mu.Lock()
	live := p.rules[:0]
	var hit *partitionRule
	for i := range p.rules {
		r := p.rules[i]
		if !r.until.IsZero() && now.After(r.until) {
			continue // expired: healed
		}
		live = append(live, r)
		if hit == nil && r.from == from && r.to == to {
			hit = &live[len(live)-1]
		}
	}
	p.rules = live
	var prob float64
	if hit != nil {
		prob = hit.prob
	}
	p.mu.Unlock()
	if hit == nil {
		return false
	}
	if prob >= 1 || p.inj.roll(prob) {
		p.inj.counters.inc("drops")
		return true
	}
	return false
}

// Dialer wraps dial so that dials crossing the partition fail with
// ErrInjected. from names the dialing endpoint; the dialed address is the
// other end. Membership and repair components take an injectable dial
// function, so this is the hook that creates a real split-brain window in
// tests.
func (p *Partition) Dialer(from string, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if p.Blocked(from, addr) {
			return nil, fmt.Errorf("%w: partitioned %s -> %s", ErrInjected, from, addr)
		}
		return dial(addr)
	}
}
