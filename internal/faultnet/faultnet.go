// Package faultnet injects deterministic, seedable network faults for
// testing the Besteffs distributed path: latency, dropped connections, torn
// (partial) writes and mid-stream resets. An Injector wraps net.Conn,
// net.Listener or io.Writer values; every probabilistic decision is drawn
// from one seeded random source, so a failing test reproduces exactly from
// its seed. Wrappers compose with net.Pipe for in-process tests and with
// real listeners for end-to-end ones.
//
// The package lives under internal because it is test infrastructure, but
// it is a normal (non _test) package so any package's tests can import it.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"besteffs/internal/metrics"
)

// ErrInjected reports a failure produced by fault injection rather than the
// real network.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan configures which faults an Injector produces. Zero-value fields
// disable the corresponding fault, so Plan{} injects nothing.
type Plan struct {
	// DropRate is the probability per I/O operation that the connection
	// is closed and the operation fails with ErrInjected.
	DropRate float64
	// TearRate is the probability per Write that only a prefix of the
	// buffer reaches the peer before the connection resets.
	TearRate float64
	// MaxDelay adds a uniform random latency in [0, MaxDelay) to each
	// I/O operation.
	MaxDelay time.Duration
	// ResetAfterBytes resets every wrapped connection once its total
	// written bytes exceed this budget (0 disables). Like a real RST, the
	// write that crosses the budget is truncated at the boundary: bytes
	// beyond it never reach the peer, even inside one large write.
	ResetAfterBytes int64
	// FailDials makes the first N Accept calls on a wrapped listener
	// fail with ErrInjected, simulating unreachable nodes at startup.
	FailDials int
}

// Injector draws fault decisions from one seeded source. It is safe for
// concurrent use; all wrapped values share the injector's plan and
// counters.
type Injector struct {
	mu            sync.Mutex
	rng           *rand.Rand
	plan          Plan
	failDialsLeft int

	counters faultCounters
}

// faultCounters holds one typed metrics.Counter per fault kind. The zero
// value is ready to use; counters are exported through Injector.Counters
// under the same keys the old CounterSet snapshot used.
type faultCounters struct {
	delays       metrics.Counter
	drops        metrics.Counter
	tears        metrics.Counter
	resets       metrics.Counter
	dialFailures metrics.Counter
}

// inc bumps the counter for kind; unknown kinds are ignored (no fault site
// passes one).
func (fc *faultCounters) inc(kind string) {
	switch kind {
	case "delays":
		fc.delays.Inc()
	case "drops":
		fc.drops.Inc()
	case "tears":
		fc.tears.Inc()
	case "resets":
		fc.resets.Inc()
	case "dial_failures":
		fc.dialFailures.Inc()
	}
}

// NewInjector returns an injector with the given seed and plan.
func NewInjector(seed int64, plan Plan) *Injector {
	return &Injector{
		rng:           rand.New(rand.NewSource(seed)),
		plan:          plan,
		failDialsLeft: plan.FailDials,
	}
}

// Counters reports how many faults of each kind were injected
// ("delays", "drops", "tears", "resets", "dial_failures").
func (inj *Injector) Counters() map[string]int64 {
	return map[string]int64{
		"delays":        inj.counters.delays.Value(),
		"drops":         inj.counters.drops.Value(),
		"tears":         inj.counters.tears.Value(),
		"resets":        inj.counters.resets.Value(),
		"dial_failures": inj.counters.dialFailures.Value(),
	}
}

// delay returns the injected latency for one operation.
func (inj *Injector) delay() time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.plan.MaxDelay <= 0 {
		return 0
	}
	return time.Duration(inj.rng.Int63n(int64(inj.plan.MaxDelay)))
}

// roll returns true with probability p.
func (inj *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.rng.Float64() < p
}

// ShouldDrop draws one seeded drop decision against Plan.DropRate, for
// protocols that simulate message exchange without a net.Conn (the gossip
// churn tests): true means the message is lost, and the loss is counted
// with the connection-level drops.
func (inj *Injector) ShouldDrop() bool {
	if inj.roll(inj.plan.DropRate) {
		inj.counters.inc("drops")
		return true
	}
	return false
}

// tearPoint picks how many of n bytes a torn write delivers.
func (inj *Injector) tearPoint(n int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return inj.rng.Intn(n)
}

// Conn wraps c with the injector's faults.
func (inj *Injector) Conn(c net.Conn) net.Conn {
	return &conn{Conn: c, inj: inj}
}

// Listener wraps l; accepted connections are wrapped with the injector's
// faults, and the first Plan.FailDials accepts fail with ErrInjected.
func (inj *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, inj: inj}
}

// Writer wraps w so writes suffer the injector's tear faults; it is the
// file-backed analogue of a torn connection (journal crash tests).
func (inj *Injector) Writer(w io.Writer) io.Writer {
	return &writer{w: w, inj: inj}
}

// conn is a fault-injecting net.Conn.
type conn struct {
	net.Conn
	inj *Injector

	mu      sync.Mutex
	written int64
	broken  bool
}

// fail marks the connection broken and closes the underlying conn.
func (c *conn) fail(kind string) error {
	c.inj.counters.inc(kind)
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
	c.Conn.Close()
	return fmt.Errorf("%w: %s", ErrInjected, kind)
}

func (c *conn) isBroken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Read implements net.Conn with latency and drop faults.
func (c *conn) Read(p []byte) (int, error) {
	if c.isBroken() {
		return 0, fmt.Errorf("%w: connection dropped", ErrInjected)
	}
	if d := c.inj.delay(); d > 0 {
		c.inj.counters.inc("delays")
		time.Sleep(d)
	}
	if c.inj.roll(c.inj.plan.DropRate) {
		return 0, c.fail("drops")
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with latency, drop, tear and reset faults.
func (c *conn) Write(p []byte) (int, error) {
	if c.isBroken() {
		return 0, fmt.Errorf("%w: connection dropped", ErrInjected)
	}
	if d := c.inj.delay(); d > 0 {
		c.inj.counters.inc("delays")
		time.Sleep(d)
	}
	if c.inj.roll(c.inj.plan.DropRate) {
		return 0, c.fail("drops")
	}
	if c.inj.roll(c.inj.plan.TearRate) {
		k := c.inj.tearPoint(len(p))
		if k > 0 {
			c.Conn.Write(p[:k])
		}
		return k, c.fail("tears")
	}
	if budget := c.inj.plan.ResetAfterBytes; budget > 0 {
		c.mu.Lock()
		remain := budget - c.written
		c.mu.Unlock()
		if int64(len(p)) > remain {
			// This write crosses the budget: deliver only the bytes
			// within it, then reset. The tail is lost, as it would be
			// when a RST kills data queued behind it.
			n := 0
			if remain > 0 {
				n, _ = c.Conn.Write(p[:remain])
			}
			c.mu.Lock()
			c.written += int64(n)
			c.mu.Unlock()
			return n, c.fail("resets")
		}
	}
	n, err := c.Conn.Write(p)
	if err != nil {
		return n, err
	}
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
	return n, nil
}

// listener wraps accepts with dial-failure and connection faults.
type listener struct {
	net.Listener
	inj *Injector
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.inj.mu.Lock()
	failNow := l.inj.failDialsLeft > 0
	if failNow {
		l.inj.failDialsLeft--
	}
	l.inj.mu.Unlock()
	if failNow {
		l.inj.counters.inc("dial_failures")
		c.Close()
		return nil, fmt.Errorf("%w: dial refused", ErrInjected)
	}
	return l.inj.Conn(c), nil
}

// writer injects tear faults into a plain io.Writer.
type writer struct {
	w      io.Writer
	inj    *Injector
	mu     sync.Mutex
	broken bool
}

// Write implements io.Writer: once a tear fires, the writer stays broken,
// mirroring a crashed process that never writes again.
func (w *writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	broken := w.broken
	w.mu.Unlock()
	if broken {
		return 0, fmt.Errorf("%w: writer torn", ErrInjected)
	}
	if w.inj.roll(w.inj.plan.TearRate) {
		k := w.inj.tearPoint(len(p))
		if k > 0 {
			w.w.Write(p[:k])
		}
		w.inj.counters.inc("tears")
		w.mu.Lock()
		w.broken = true
		w.mu.Unlock()
		return k, fmt.Errorf("%w: torn write", ErrInjected)
	}
	return w.w.Write(p)
}

// LimitWriter returns an io.Writer that passes through the first n bytes
// and fails every write after the budget is exhausted, possibly mid-buffer
// -- the deterministic "process died here" primitive behind torn-frame
// tests. Unlike Injector faults it involves no randomness at all.
func LimitWriter(w io.Writer, n int64) io.Writer {
	return NewWriteBudget(n).Writer(w)
}

// WriteBudget is a byte budget shared by any number of writers: the total
// bytes written through all of them pass through until the budget runs out,
// then every write fails (the last one possibly mid-buffer). It extends
// LimitWriter across file boundaries -- a segmented WAL rotates through
// several files, and "the process died after byte N" must cut the
// concatenated record stream at exactly N no matter which segment byte N
// landed in.
type WriteBudget struct {
	mu   sync.Mutex
	left int64
}

// NewWriteBudget returns a budget of n bytes.
func NewWriteBudget(n int64) *WriteBudget {
	return &WriteBudget{left: n}
}

// Remaining returns the unspent bytes.
func (b *WriteBudget) Remaining() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.left
}

// Writer wraps w so its writes draw down the shared budget.
func (b *WriteBudget) Writer(w io.Writer) io.Writer {
	return &budgetWriter{w: w, b: b}
}

type budgetWriter struct {
	w io.Writer
	b *WriteBudget
}

// Write implements io.Writer.
func (bw *budgetWriter) Write(p []byte) (int, error) {
	bw.b.mu.Lock()
	defer bw.b.mu.Unlock()
	if bw.b.left <= 0 {
		return 0, fmt.Errorf("%w: write budget exhausted", ErrInjected)
	}
	if int64(len(p)) <= bw.b.left {
		n, err := bw.w.Write(p)
		bw.b.left -= int64(n)
		return n, err
	}
	n, err := bw.w.Write(p[:bw.b.left])
	bw.b.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w: write budget exhausted", ErrInjected)
}
