package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestPartitionBidirectional(t *testing.T) {
	p := NewInjector(1, Plan{}).NewPartition()
	p.Block("a:1", "b:1")
	if !p.Blocked("a:1", "b:1") || !p.Blocked("b:1", "a:1") {
		t.Fatal("bidirectional block not symmetric")
	}
	if p.Blocked("a:1", "c:1") || p.Blocked("c:1", "b:1") {
		t.Fatal("uninvolved endpoint blocked")
	}
	p.Heal()
	if p.Blocked("a:1", "b:1") || p.Blocked("b:1", "a:1") {
		t.Fatal("heal did not clear the split")
	}
}

func TestPartitionAsymmetric(t *testing.T) {
	p := NewInjector(2, Plan{}).NewPartition()
	p.BlockOneWay("a:1", "b:1")
	if !p.Blocked("a:1", "b:1") {
		t.Fatal("a->b not blocked")
	}
	if p.Blocked("b:1", "a:1") {
		t.Fatal("reverse direction blocked on a one-way rule")
	}
}

func TestPartitionHealsAfterDeadline(t *testing.T) {
	p := NewInjector(3, Plan{}).NewPartition()
	p.BlockFor("a:1", "b:1", 30*time.Millisecond)
	if !p.Blocked("a:1", "b:1") {
		t.Fatal("not blocked inside the window")
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Blocked("a:1", "b:1") {
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.Blocked("b:1", "a:1") {
		t.Fatal("reverse rule survived the deadline")
	}
}

func TestPartitionLossySeeded(t *testing.T) {
	run := func(seed int64) (blocked int) {
		p := NewInjector(seed, Plan{}).NewPartition()
		p.BlockLossy("a:1", "b:1", 0.5)
		for i := 0; i < 200; i++ {
			if p.Blocked("a:1", "b:1") {
				blocked++
			}
		}
		return blocked
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("lossy rule blocked %d/200; want a partial partition", a)
	}
}

func TestPartitionDialer(t *testing.T) {
	inj := NewInjector(4, Plan{})
	p := inj.NewPartition()
	p.Block("a:1", "b:1")
	dial := p.Dialer("a:1", func(addr string) (net.Conn, error) {
		c, s := net.Pipe()
		s.Close()
		return c, nil
	})
	if _, err := dial("b:1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned dial err = %v, want ErrInjected", err)
	}
	c, err := dial("c:1")
	if err != nil {
		t.Fatalf("unpartitioned dial failed: %v", err)
	}
	c.Close()
	if inj.Counters()["drops"] == 0 {
		t.Fatal("partition blocks not counted as drops")
	}
}
