package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestConnDrop(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := NewInjector(1, Plan{DropRate: 1})
	c := inj.Conn(a)
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Read on always-drop conn err = %v, want ErrInjected", err)
	}
	// The connection stays broken.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("Write after drop err = %v, want ErrInjected", err)
	}
	if got := inj.Counters()["drops"]; got != 1 {
		t.Errorf("drops = %d, want 1", got)
	}
}

func TestConnTornWrite(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := NewInjector(7, Plan{TearRate: 1})
	c := inj.Conn(a)

	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		got <- buf
	}()
	payload := bytes.Repeat([]byte("z"), 100)
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn Write err = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Errorf("torn Write wrote %d bytes, want a strict prefix of %d", n, len(payload))
	}
	received := <-got
	if len(received) != n {
		t.Errorf("peer received %d bytes, writer reported %d", len(received), n)
	}
	if got := inj.Counters()["tears"]; got != 1 {
		t.Errorf("tears = %d, want 1", got)
	}
}

func TestConnResetAfterBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := NewInjector(3, Plan{ResetAfterBytes: 10})
	c := inj.Conn(a)
	go io.Copy(io.Discard, b)

	if _, err := c.Write(make([]byte, 8)); err != nil {
		t.Fatalf("first Write: %v", err)
	}
	if _, err := c.Write(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("over-budget Write err = %v, want ErrInjected", err)
	}
	if got := inj.Counters()["resets"]; got != 1 {
		t.Errorf("resets = %d, want 1", got)
	}
}

func TestConnDelayCounts(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := NewInjector(5, Plan{MaxDelay: time.Millisecond})
	c := inj.Conn(a)
	go b.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := inj.Counters()["delays"]; got == 0 {
		t.Error("no delays counted with MaxDelay set")
	}
}

func TestListenerFailDials(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	inj := NewInjector(9, Plan{FailDials: 1})
	fl := inj.Listener(l)

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	c1 := dial()
	defer c1.Close()
	if _, err := fl.Accept(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first Accept err = %v, want ErrInjected", err)
	}
	c2 := dial()
	defer c2.Close()
	conn, err := fl.Accept()
	if err != nil {
		t.Fatalf("second Accept: %v", err)
	}
	conn.Close()
	if got := inj.Counters()["dial_failures"]; got != 1 {
		t.Errorf("dial_failures = %d, want 1", got)
	}
}

func TestWriterDeterministicTears(t *testing.T) {
	// Two injectors with the same seed and plan tear at the same point.
	tearAt := func(seed int64) (int, int) {
		var sink bytes.Buffer
		w := NewInjector(seed, Plan{TearRate: 0.3}).Writer(&sink)
		total := 0
		for i := 0; i < 100; i++ {
			n, err := w.Write(bytes.Repeat([]byte("a"), 50))
			total += n
			if err != nil {
				return i, total
			}
		}
		return -1, total
	}
	i1, n1 := tearAt(42)
	i2, n2 := tearAt(42)
	if i1 != i2 || n1 != n2 {
		t.Errorf("same seed tore at (%d,%d) and (%d,%d); want identical", i1, n1, i2, n2)
	}
	if i1 < 0 {
		t.Error("TearRate 0.3 never tore in 100 writes")
	}
}

func TestLimitWriter(t *testing.T) {
	var sink bytes.Buffer
	w := LimitWriter(&sink, 10)
	if n, err := w.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("Write within budget = (%d, %v)", n, err)
	}
	// Mid-buffer exhaustion: only the first 5 of 8 bytes land.
	n, err := w.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write across budget = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if sink.String() != "12345abcde" {
		t.Errorf("sink = %q, want %q", sink.String(), "12345abcde")
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("Write after exhaustion = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestWriteBudgetSharedAcrossWriters(t *testing.T) {
	var a, b bytes.Buffer
	budget := NewWriteBudget(10)
	wa, wb := budget.Writer(&a), budget.Writer(&b)
	if n, err := wa.Write([]byte("123456")); n != 6 || err != nil {
		t.Fatalf("first writer = (%d, %v)", n, err)
	}
	// The second writer draws from the same budget: 4 bytes left, cut
	// mid-buffer exactly where a WAL rotation would have crashed.
	n, err := wb.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("second writer = (%d, %v), want (4, ErrInjected)", n, err)
	}
	if a.String() != "123456" || b.String() != "abcd" {
		t.Errorf("streams = %q / %q, want %q / %q", a.String(), b.String(), "123456", "abcd")
	}
	if budget.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", budget.Remaining())
	}
	if n, err := wa.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("exhausted budget accepted a write: (%d, %v)", n, err)
	}
}
