package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestQuickEventOrdering schedules random events (including from inside
// handlers) and checks the core engine contract: events fire in
// non-decreasing time order, handlers see the event's own time as now, and
// nothing fires past the run horizon.
func TestQuickEventOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		horizon := time.Duration(1+rng.Intn(100)) * time.Hour
		var fired []time.Duration
		var schedule func(at time.Duration, depth int)
		schedule = func(at time.Duration, depth int) {
			err := e.Schedule(at, func(now time.Duration) {
				fired = append(fired, now)
				if now != e.Now() {
					t.Fatalf("handler now %v != engine now %v", now, e.Now())
				}
				// Handlers may schedule follow-ups.
				if depth < 3 && rng.Intn(2) == 0 {
					schedule(now+time.Duration(rng.Intn(600))*time.Minute, depth+1)
				}
			})
			if err != nil {
				t.Fatalf("Schedule: %v", err)
			}
		}
		for i := 0; i < 30; i++ {
			schedule(time.Duration(rng.Intn(120))*time.Hour, 0)
		}
		e.Run(horizon)
		prev := time.Duration(-1)
		for i, at := range fired {
			if at < prev {
				t.Fatalf("trial %d: event %d fired at %v after %v", trial, i, at, prev)
			}
			if at > horizon {
				t.Fatalf("trial %d: event fired at %v past horizon %v", trial, at, horizon)
			}
			prev = at
		}
		// Everything left pending is beyond the horizon.
		if e.Now() != horizon {
			t.Fatalf("trial %d: clock at %v, want %v", trial, e.Now(), horizon)
		}
	}
}
