package sim

import (
	"errors"
	"testing"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	mustSchedule(t, e, 2*time.Hour, func(time.Duration) { got = append(got, 2) })
	mustSchedule(t, e, time.Hour, func(time.Duration) { got = append(got, 1) })
	mustSchedule(t, e, 3*time.Hour, func(time.Duration) { got = append(got, 3) })
	fired := e.Run(4 * time.Hour)
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if e.Now() != 4*time.Hour {
		t.Errorf("Now = %v, want 4h (clock advances to until)", e.Now())
	}
}

func mustSchedule(t *testing.T, e *Engine, at time.Duration, fn Handler) {
	t.Helper()
	if err := e.Schedule(at, fn); err != nil {
		t.Fatalf("Schedule(%v): %v", at, err)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, e, time.Hour, func(time.Duration) { got = append(got, i) })
	}
	e.Run(time.Hour)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events fired out of order: %v", got)
		}
	}
}

func TestGranularityQuantization(t *testing.T) {
	e := NewEngine() // default minute granularity
	var at time.Duration
	mustSchedule(t, e, 90*time.Second, func(now time.Duration) { at = now })
	e.Run(time.Hour)
	if at != 2*time.Minute {
		t.Errorf("event fired at %v, want rounded up to 2m", at)
	}

	coarse := NewEngine(WithGranularity(time.Hour))
	mustSchedule(t, coarse, time.Minute, func(now time.Duration) { at = now })
	coarse.Run(2 * time.Hour)
	if at != time.Hour {
		t.Errorf("coarse event fired at %v, want 1h", at)
	}
}

func TestScheduleErrors(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(time.Hour, nil); !errors.Is(err, ErrNilHandler) {
		t.Errorf("nil handler err = %v, want ErrNilHandler", err)
	}
	mustSchedule(t, e, time.Hour, func(time.Duration) {})
	e.Run(time.Hour)
	if err := e.Schedule(time.Minute, func(time.Duration) {}); !errors.Is(err, ErrPast) {
		t.Errorf("past schedule err = %v, want ErrPast", err)
	}
	if err := e.After(-time.Minute, func(time.Duration) {}); !errors.Is(err, ErrPast) {
		t.Errorf("negative After err = %v, want ErrPast", err)
	}
	if err := e.Every(0, 0, time.Hour, func(time.Duration) {}); !errors.Is(err, ErrBadInterval) {
		t.Errorf("zero interval err = %v, want ErrBadInterval", err)
	}
	if err := e.Every(0, time.Hour, time.Hour, nil); !errors.Is(err, ErrNilHandler) {
		t.Errorf("nil periodic handler err = %v, want ErrNilHandler", err)
	}
}

func TestHandlerSchedulesMore(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain Handler
	chain = func(now time.Duration) {
		count++
		if count < 5 {
			if err := e.Schedule(now+time.Hour, chain); err != nil {
				t.Errorf("chained Schedule: %v", err)
			}
		}
	}
	mustSchedule(t, e, time.Hour, chain)
	e.Run(24 * time.Hour)
	if count != 5 {
		t.Errorf("chain fired %d times, want 5", count)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	if err := e.Every(time.Hour, 2*time.Hour, 9*time.Hour, func(now time.Duration) {
		times = append(times, now)
	}); err != nil {
		t.Fatalf("Every: %v", err)
	}
	e.Run(24 * time.Hour)
	want := []time.Duration{1 * time.Hour, 3 * time.Hour, 5 * time.Hour, 7 * time.Hour, 9 * time.Hour}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	fired := false
	mustSchedule(t, e, 2*time.Hour, func(time.Duration) { fired = true })
	e.Run(time.Hour)
	if fired {
		t.Error("event beyond until fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(3 * time.Hour)
	if !fired {
		t.Error("event not fired after extending the run")
	}
	if e.Processed() != 1 {
		t.Errorf("Processed = %d, want 1", e.Processed())
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestLongRunManyEvents(t *testing.T) {
	// A year of hourly events: sanity-check heap behaviour at scale.
	e := NewEngine()
	count := 0
	year := 365 * 24 * time.Hour
	if err := e.Every(0, time.Hour, year, func(time.Duration) { count++ }); err != nil {
		t.Fatalf("Every: %v", err)
	}
	e.Run(year)
	if want := 365*24 + 1; count != want {
		t.Errorf("count = %d, want %d", count, want)
	}
}
