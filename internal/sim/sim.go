// Package sim is the discrete-event simulation engine behind every
// experiment: a virtual clock at configurable granularity (the paper
// simulates five to ten years at minute granularity) and a binary-heap
// event queue with deterministic FIFO ordering of simultaneous events.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Scheduling errors.
var (
	// ErrPast reports an event scheduled before the current virtual time.
	ErrPast = errors.New("sim: event scheduled in the past")
	// ErrNilHandler reports a nil event handler.
	ErrNilHandler = errors.New("sim: nil event handler")
	// ErrBadInterval reports a non-positive periodic interval.
	ErrBadInterval = errors.New("sim: interval must be positive")
)

// Handler is invoked when an event fires, with the virtual time of the
// event. Handlers may schedule further events.
type Handler func(now time.Duration)

type event struct {
	at  time.Duration
	seq uint64
	fn  Handler
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now         time.Duration
	granularity time.Duration
	queue       eventHeap
	seq         uint64
	processed   uint64
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithGranularity sets the clock quantum; event times are rounded up to the
// next multiple. The default is one minute, the paper's resolution.
func WithGranularity(g time.Duration) EngineOption {
	return func(e *Engine) {
		if g > 0 {
			e.granularity = g
		}
	}
}

// NewEngine returns an engine at virtual time zero.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{granularity: time.Minute}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// quantize rounds t up to the engine granularity.
func (e *Engine) quantize(t time.Duration) time.Duration {
	if rem := t % e.granularity; rem != 0 {
		return t + e.granularity - rem
	}
	return t
}

// Schedule queues fn to run at virtual time at (rounded up to the clock
// quantum). Scheduling at the current time is allowed; the event fires in
// FIFO order after already-queued events at that time.
func (e *Engine) Schedule(at time.Duration, fn Handler) error {
	if fn == nil {
		return ErrNilHandler
	}
	at = e.quantize(at)
	if at < e.now {
		return fmt.Errorf("%w: %v before now %v", ErrPast, at, e.now)
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
	return nil
}

// After queues fn to run delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn Handler) error {
	if delay < 0 {
		return fmt.Errorf("%w: negative delay %v", ErrPast, delay)
	}
	return e.Schedule(e.now+delay, fn)
}

// Every schedules fn at start and then every interval until (and including
// events at) until. The common use is metric probes: hourly density
// samples over a five-year run.
func (e *Engine) Every(start, interval, until time.Duration, fn Handler) error {
	if fn == nil {
		return ErrNilHandler
	}
	if interval <= 0 {
		return fmt.Errorf("%w: %v", ErrBadInterval, interval)
	}
	var tick Handler
	tick = func(now time.Duration) {
		fn(now)
		if next := now + interval; next <= until {
			// Re-arming from inside a handler cannot fail: the next
			// time is in the future and tick is non-nil.
			_ = e.Schedule(next, tick)
		}
	}
	return e.Schedule(start, tick)
}

// Step fires the earliest queued event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.processed++
	ev.fn(ev.at)
	return true
}

// Run fires events in time order until the queue is empty or the next
// event is after until; the clock then advances to until. It returns the
// number of events fired.
func (e *Engine) Run(until time.Duration) uint64 {
	until = e.quantize(until)
	fired := uint64(0)
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
		fired++
	}
	if e.now < until {
		e.now = until
	}
	return fired
}
