// Package timeconst implements Palimpsest's time-constant estimator and the
// paper's analysis of it (Sections 5.1.2 and 5.2.3, Figures 5 and 11).
//
// Palimpsest is a soft-capacity FIFO store: an object survives roughly
// tau = capacity / arrival-rate after it is written, and applications must
// refresh objects they care about before tau elapses. The paper's point is
// that tau, measured over hourly and daily windows, is so variable -- with
// variance that itself depends on the arrival rate (heteroscedasticity) --
// that a creator cannot reliably predict when to rejuvenate, whereas the
// storage importance density is a stable predictor.
package timeconst

import (
	"errors"
	"fmt"
	"time"

	"besteffs/internal/stats"
	"besteffs/internal/workload"
)

// Estimator computes time constants from an arrival log.
type Estimator struct {
	// Capacity is the storage size in bytes.
	Capacity int64
	// Window is the measurement window (hour, day or month in the
	// paper's figures).
	Window time.Duration
}

// Sample is one window's measurement.
type Sample struct {
	// Start is the window's start time.
	Start time.Duration
	// Bytes is the volume that arrived during the window.
	Bytes int64
	// Rate is the arrival rate in bytes per hour.
	Rate float64
	// Tau is capacity / rate: the expected survival time of a new object
	// under FIFO reclamation.
	Tau time.Duration
}

// Estimator errors.
var (
	// ErrBadCapacity reports a non-positive capacity.
	ErrBadCapacity = errors.New("timeconst: capacity must be positive")
	// ErrBadWindow reports a non-positive window.
	ErrBadWindow = errors.New("timeconst: window must be positive")
	// ErrNoWindows reports an arrival log with no active windows.
	ErrNoWindows = errors.New("timeconst: no windows with arrivals")
)

// Series buckets the arrival log into consecutive windows over [0, horizon)
// and returns one sample per window with at least one arrival, plus the
// number of empty windows skipped. Empty windows have an undefined
// (infinite) time constant; their frequency is itself part of why hourly
// estimates mislead.
func (e Estimator) Series(arrivals []workload.Arrival, horizon time.Duration) ([]Sample, int, error) {
	if e.Capacity <= 0 {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadCapacity, e.Capacity)
	}
	if e.Window <= 0 {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadWindow, e.Window)
	}
	if horizon <= 0 {
		return nil, 0, fmt.Errorf("timeconst: horizon %v must be positive", horizon)
	}
	nwin := int((horizon + e.Window - 1) / e.Window)
	volumes := make([]int64, nwin)
	for _, a := range arrivals {
		if a.Time < 0 || a.Time >= horizon {
			continue
		}
		volumes[int(a.Time/e.Window)] += a.Size
	}
	samples := make([]Sample, 0, nwin)
	empty := 0
	for i, v := range volumes {
		if v == 0 {
			empty++
			continue
		}
		// The final window may extend past the horizon; rate over its
		// covered span only, so a partial window is not misread as a
		// rate collapse.
		span := e.Window
		if start := time.Duration(i) * e.Window; start+span > horizon {
			span = horizon - start
		}
		rate := float64(v) / span.Hours()
		tau := time.Duration(float64(e.Capacity) / rate * float64(time.Hour))
		samples = append(samples, Sample{
			Start: time.Duration(i) * e.Window,
			Bytes: v,
			Rate:  rate,
			Tau:   tau,
		})
	}
	return samples, empty, nil
}

// Analysis summarizes the predictability of a time-constant series.
type Analysis struct {
	// Window is the measurement window analyzed.
	Window time.Duration
	// Samples is the number of non-empty windows.
	Samples int
	// EmptyWindows counts windows with no arrivals.
	EmptyWindows int
	// TauDays summarizes the time constants in days.
	TauDays stats.Summary
	// CoV is the coefficient of variation of tau: the headline
	// unpredictability number.
	CoV float64
	// Hetero tests whether tau's residual variance depends on the
	// arrival rate, the paper's heteroscedasticity observation.
	Hetero stats.HeteroscedasticityResult
}

// Analyze runs Series and computes the summary statistics.
func (e Estimator) Analyze(arrivals []workload.Arrival, horizon time.Duration) (Analysis, error) {
	samples, empty, err := e.Series(arrivals, horizon)
	if err != nil {
		return Analysis{}, err
	}
	if len(samples) == 0 {
		return Analysis{}, ErrNoWindows
	}
	taus := make([]float64, len(samples))
	rates := make([]float64, len(samples))
	for i, s := range samples {
		taus[i] = s.Tau.Hours() / 24
		rates[i] = s.Rate
	}
	a := Analysis{Window: e.Window, Samples: len(samples), EmptyWindows: empty}
	if a.TauDays, err = stats.Summarize(taus); err != nil {
		return Analysis{}, err
	}
	if len(taus) >= 2 {
		if cov, err := stats.CoefficientOfVariation(taus); err == nil {
			a.CoV = cov
		}
		if h, err := stats.BreuschPagan(rates, taus); err == nil {
			a.Hetero = h
		}
	}
	return a, nil
}
