package timeconst

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"besteffs/internal/workload"
)

const (
	day = 24 * time.Hour
	gb  = int64(1) << 30
)

func TestSeriesSteadyRate(t *testing.T) {
	// 1 GB arrives every hour; capacity 100 GB. Tau must be a steady
	// 100 hours in every window regardless of window size.
	var arrivals []workload.Arrival
	horizon := 10 * day
	for ts := time.Duration(0); ts < horizon; ts += time.Hour {
		arrivals = append(arrivals, workload.Arrival{Time: ts, Size: gb})
	}
	for _, window := range []time.Duration{time.Hour, day} {
		est := Estimator{Capacity: 100 * gb, Window: window}
		samples, empty, err := est.Series(arrivals, horizon)
		if err != nil {
			t.Fatalf("Series(%v): %v", window, err)
		}
		if empty != 0 {
			t.Errorf("window %v: %d empty windows, want 0", window, empty)
		}
		for _, s := range samples {
			if got := s.Tau; got < 99*time.Hour || got > 101*time.Hour {
				t.Errorf("window %v: tau = %v, want ~100h", window, got)
			}
		}
	}
}

func TestSeriesCountsEmptyWindows(t *testing.T) {
	arrivals := []workload.Arrival{
		{Time: 0, Size: gb},
		{Time: 5 * day, Size: gb},
	}
	est := Estimator{Capacity: 10 * gb, Window: day}
	samples, empty, err := est.Series(arrivals, 6*day)
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	if len(samples) != 2 || empty != 4 {
		t.Errorf("samples = %d, empty = %d; want 2, 4", len(samples), empty)
	}
}

func TestSeriesIgnoresOutOfHorizon(t *testing.T) {
	arrivals := []workload.Arrival{
		{Time: -time.Hour, Size: gb},
		{Time: 0, Size: gb},
		{Time: 10 * day, Size: gb}, // beyond horizon
	}
	est := Estimator{Capacity: 10 * gb, Window: day}
	samples, _, err := est.Series(arrivals, 5*day)
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	if len(samples) != 1 || samples[0].Bytes != gb {
		t.Errorf("samples = %+v, want one window with 1 GB", samples)
	}
}

func TestSeriesValidation(t *testing.T) {
	if _, _, err := (Estimator{Capacity: 0, Window: day}).Series(nil, day); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("zero capacity err = %v", err)
	}
	if _, _, err := (Estimator{Capacity: 1, Window: 0}).Series(nil, day); !errors.Is(err, ErrBadWindow) {
		t.Errorf("zero window err = %v", err)
	}
	if _, _, err := (Estimator{Capacity: 1, Window: day}).Series(nil, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestAnalyzeVariabilityShrinksWithWindow(t *testing.T) {
	// Bursty arrivals: hourly tau estimates must be far noisier than
	// monthly ones -- the paper's core claim about Palimpsest's
	// predictability (Figures 5 and 11).
	rng := rand.New(rand.NewSource(11))
	var arrivals []workload.Arrival
	horizon := 365 * day
	for ts := time.Duration(0); ts < horizon; ts += time.Hour {
		if rng.Float64() < 0.3 {
			arrivals = append(arrivals, workload.Arrival{
				Time: ts, Size: int64(rng.Float64() * float64(gb)),
			})
		}
	}
	cov := func(window time.Duration) float64 {
		est := Estimator{Capacity: 80 * gb, Window: window}
		a, err := est.Analyze(arrivals, horizon)
		if err != nil {
			t.Fatalf("Analyze(%v): %v", window, err)
		}
		return a.CoV
	}
	hourly, daily, monthly := cov(time.Hour), cov(day), cov(30*day)
	if !(hourly > daily && daily > monthly) {
		t.Errorf("CoV not shrinking with window: hour %v, day %v, month %v",
			hourly, daily, monthly)
	}
	if monthly > 0.5 {
		t.Errorf("monthly CoV = %v, want reasonably stable (< 0.5)", monthly)
	}
	if hourly < 0.5 {
		t.Errorf("hourly CoV = %v, want clearly noisy (> 0.5)", hourly)
	}
}

func TestAnalyzeNoWindows(t *testing.T) {
	est := Estimator{Capacity: gb, Window: day}
	if _, err := est.Analyze(nil, day); !errors.Is(err, ErrNoWindows) {
		t.Errorf("Analyze with no arrivals err = %v, want ErrNoWindows", err)
	}
}

func TestAnalyzeSummary(t *testing.T) {
	arrivals := []workload.Arrival{
		{Time: time.Hour, Size: gb},
		{Time: 25 * time.Hour, Size: 2 * gb},
	}
	est := Estimator{Capacity: 10 * gb, Window: day}
	a, err := est.Analyze(arrivals, 2*day)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Samples != 2 || a.EmptyWindows != 0 {
		t.Errorf("analysis = %+v", a)
	}
	// Window rates: 1 GB/day and 2 GB/day -> tau 10 days and 5 days.
	if a.TauDays.Max < 9.9 || a.TauDays.Max > 10.1 || a.TauDays.Min < 4.9 || a.TauDays.Min > 5.1 {
		t.Errorf("tau summary = %+v, want max ~10d min ~5d", a.TauDays)
	}
}
