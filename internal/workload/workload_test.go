package workload

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"besteffs/internal/calendar"
	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/policy"
	"besteffs/internal/sim"
	"besteffs/internal/store"
)

const day = importance.Day

// collectSink records offered objects.
type collectSink struct {
	objects []*object.Object
	times   []time.Duration
}

func (s *collectSink) Offer(o *object.Object, now time.Duration) error {
	s.objects = append(s.objects, o)
	s.times = append(s.times, now)
	return nil
}

func rampLifetime(time.Duration) importance.Function {
	return importance.TwoStep{Plateau: 1, Persist: 15 * day, Wane: 15 * day}
}

func TestRampVolumeMatchesPaperCalibration(t *testing.T) {
	eng := sim.NewEngine()
	sink := &collectSink{}
	rng := rand.New(rand.NewSource(1))
	ramp := &Ramp{Lifetime: rampLifetime, KeepLog: true}
	year := 365 * day
	if err := ramp.Install(eng, sink, rng, year); err != nil {
		t.Fatalf("Install: %v", err)
	}
	eng.Run(year)
	if err := ramp.Err(); err != nil {
		t.Fatalf("generator error: %v", err)
	}
	if len(sink.objects) == 0 {
		t.Fatal("no arrivals generated")
	}

	// Q1 volume should fill 80 GB in roughly 40-50 days (Section 5.1:
	// "fully used up in about 40 to 50 days" for a traditional system).
	var cum int64
	fillDay := -1
	for i, o := range sink.objects {
		cum += o.Size
		if cum >= 80*GB {
			fillDay = int(sink.times[i] / day)
			break
		}
	}
	if fillDay < 30 || fillDay > 60 {
		t.Errorf("80 GB filled on day %d, want roughly 40-50", fillDay)
	}

	// Later quarters must be denser than the first.
	quarter := func(q int) int64 {
		var v int64
		for i, o := range sink.objects {
			if int(sink.times[i]/(91*day)) == q {
				v += o.Size
			}
		}
		return v
	}
	q0, q3 := quarter(0), quarter(3)
	if q3 <= q0 {
		t.Errorf("Q4 volume %d <= Q1 volume %d; ramp not increasing", q3, q0)
	}
	// Ratio of peak rates is 1.3/0.5 = 2.6; allow generous noise.
	if ratio := float64(q3) / float64(q0); ratio < 1.8 || ratio > 3.6 {
		t.Errorf("Q4/Q1 volume ratio = %v, want near 2.6", ratio)
	}
	if len(ramp.Arrivals()) != len(sink.objects) {
		t.Errorf("arrival log %d entries, want %d", len(ramp.Arrivals()), len(sink.objects))
	}
}

func TestRampDeterministicPerSeed(t *testing.T) {
	run := func() []*object.Object {
		eng := sim.NewEngine()
		sink := &collectSink{}
		ramp := &Ramp{Lifetime: rampLifetime}
		if err := ramp.Install(eng, sink, rand.New(rand.NewSource(7)), 30*day); err != nil {
			t.Fatalf("Install: %v", err)
		}
		eng.Run(30 * day)
		return sink.objects
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Size != b[i].Size || a[i].Arrival != b[i].Arrival {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRampValidation(t *testing.T) {
	eng := sim.NewEngine()
	sink := &collectSink{}
	rng := rand.New(rand.NewSource(1))
	if err := (&Ramp{Lifetime: rampLifetime}).Install(nil, sink, rng, day); !errors.Is(err, ErrNilEngine) {
		t.Errorf("nil engine err = %v", err)
	}
	if err := (&Ramp{Lifetime: rampLifetime}).Install(eng, nil, rng, day); !errors.Is(err, ErrNilSink) {
		t.Errorf("nil sink err = %v", err)
	}
	if err := (&Ramp{Lifetime: rampLifetime}).Install(eng, sink, nil, day); !errors.Is(err, ErrNilRand) {
		t.Errorf("nil rng err = %v", err)
	}
	if err := (&Ramp{}).Install(eng, sink, rng, day); err == nil {
		t.Error("missing Lifetime should fail")
	}
	bad := &Ramp{Lifetime: rampLifetime, QuarterRatesGBPerHour: []float64{0.5, -1}}
	if err := bad.Install(eng, sink, rng, day); err == nil {
		t.Error("negative rate should fail")
	}
	badDuty := &Ramp{Lifetime: rampLifetime, DutyCycle: 1.5}
	if err := badDuty.Install(eng, sink, rng, day); err == nil {
		t.Error("duty cycle > 1 should fail")
	}
}

func TestUnitSink(t *testing.T) {
	u, err := store.New(10*GB, policy.TemporalImportance{})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	sink := UnitSink{Unit: u}
	o, err := object.New("a", GB, 0, importance.Constant{Level: 1})
	if err != nil {
		t.Fatalf("object.New: %v", err)
	}
	if err := sink.Offer(o, 0); err != nil {
		t.Fatalf("Offer: %v", err)
	}
	// A rejection is not an error...
	big, err := object.New("b", 100*GB, 0, importance.Constant{Level: 1})
	if err != nil {
		t.Fatalf("object.New: %v", err)
	}
	if err := sink.Offer(big, 0); err != nil {
		t.Errorf("rejection surfaced as error: %v", err)
	}
	// ...but a duplicate ID is.
	dup, err := object.New("a", GB, 0, importance.Constant{Level: 1})
	if err != nil {
		t.Fatalf("object.New: %v", err)
	}
	if err := sink.Offer(dup, 0); err == nil {
		t.Error("duplicate Offer should fail")
	}
}

func TestLectureSingleInstructor(t *testing.T) {
	eng := sim.NewEngine()
	sink := &collectSink{}
	rng := rand.New(rand.NewSource(3))
	lec := &Lecture{KeepLog: true}
	year := calendar.Year
	if err := lec.Install(eng, sink, rng, year); err != nil {
		t.Fatalf("Install: %v", err)
	}
	eng.Run(year)
	if err := lec.Err(); err != nil {
		t.Fatalf("generator error: %v", err)
	}
	counts := lec.Counts()
	if counts.UniversityObjects == 0 || counts.StudentObjects == 0 {
		t.Fatalf("counts = %+v, want both classes present", counts)
	}
	// MWF across spring (113 days), summer (61) and fall (113) is about
	// (113+61+113) * 3/7 = 123 lecture days; one university object each.
	if counts.UniversityObjects < 100 || counts.UniversityObjects > 140 {
		t.Errorf("university objects = %d, want ~123", counts.UniversityObjects)
	}
	// Up to 3 students, mean 1.5 per lecture.
	ratio := float64(counts.StudentObjects) / float64(counts.UniversityObjects)
	if ratio < 1.0 || ratio > 2.0 {
		t.Errorf("student/university ratio = %v, want ~1.5", ratio)
	}
	// A semester of one course's camera streams is roughly 20-25 GB
	// (the paper measured "over 25 GB ... in a single semester").
	springBytes := int64(0)
	for i, o := range sink.objects {
		if o.Class == object.ClassUniversity && sink.times[i] < 121*day {
			springBytes += o.Size
		}
	}
	if springBytes < 10*GB || springBytes > 40*GB {
		t.Errorf("spring camera volume = %.1f GB, want ~20", float64(springBytes)/float64(GB))
	}

	for i, o := range sink.objects {
		if calendar.TermAt(o.Arrival) == calendar.TermBreak {
			// Arrival jitter may spill at most a day past term end.
			if calendar.TermAt(o.Arrival-day) == calendar.TermBreak {
				t.Fatalf("object %d (%s) arrived deep in a break", i, o.ID)
			}
		}
		if o.Class == object.ClassUniversity && o.ImportanceAt(o.Arrival) != 1 {
			t.Fatalf("university object %s initial importance %v, want 1",
				o.ID, o.ImportanceAt(o.Arrival))
		}
		if o.Class == object.ClassStudent && o.ImportanceAt(o.Arrival) != 0.5 {
			t.Fatalf("student object %s initial importance %v, want 0.5",
				o.ID, o.ImportanceAt(o.Arrival))
		}
	}
}

func TestLectureUniversityScaleCounts(t *testing.T) {
	eng := sim.NewEngine()
	var universityBytes int64
	sink := SinkFunc(func(o *object.Object, now time.Duration) error {
		if o.Class == object.ClassUniversity {
			universityBytes += o.Size
		}
		return nil
	})
	rng := rand.New(rand.NewSource(5))
	// Scaled-down university: 100 courses for a spring term.
	lec := &Lecture{Courses: 100, MaxStudentStreams: 0}
	horizon := 130 * day
	if err := lec.Install(eng, sink, rng, horizon); err != nil {
		t.Fatalf("Install: %v", err)
	}
	eng.Run(horizon)
	if err := lec.Err(); err != nil {
		t.Fatalf("generator error: %v", err)
	}
	perCourse := float64(universityBytes) / 100 / float64(GB)
	if perCourse < 15 || perCourse > 35 {
		t.Errorf("per-course spring volume = %.1f GB, want ~20-25", perCourse)
	}
}

func TestLectureValidation(t *testing.T) {
	eng := sim.NewEngine()
	sink := &collectSink{}
	rng := rand.New(rand.NewSource(1))
	if err := (&Lecture{Courses: -1}).Install(eng, sink, rng, day); err == nil {
		t.Error("negative courses should fail")
	}
	if err := (&Lecture{MinLectureMinutes: 90, MaxLectureMinutes: 50}).Install(eng, sink, rng, day); err == nil {
		t.Error("inverted lecture bounds should fail")
	}
}

func TestStreamBytes(t *testing.T) {
	// 1 Mbps for 60 minutes = 450 MB (decimal).
	if got := streamBytes(1, 60); got != 450_000_000 {
		t.Errorf("streamBytes(1, 60) = %d, want 450000000", got)
	}
}

func TestSinkFuncErrorPropagates(t *testing.T) {
	eng := sim.NewEngine()
	boom := errors.New("boom")
	sink := SinkFunc(func(*object.Object, time.Duration) error { return boom })
	ramp := &Ramp{Lifetime: rampLifetime, DutyCycle: 1}
	if err := ramp.Install(eng, sink, rand.New(rand.NewSource(1)), 2*day); err != nil {
		t.Fatalf("Install: %v", err)
	}
	eng.Run(2 * day)
	if !errors.Is(ramp.Err(), boom) {
		t.Errorf("Err() = %v, want boom", ramp.Err())
	}
}

func TestRampDiurnalConcentratesWorkingHours(t *testing.T) {
	run := func(diurnal bool) (working, night int, total int64) {
		eng := sim.NewEngine()
		sink := &collectSink{}
		ramp := &Ramp{Lifetime: rampLifetime, Diurnal: diurnal}
		if err := ramp.Install(eng, sink, rand.New(rand.NewSource(6)), 120*day); err != nil {
			t.Fatalf("Install: %v", err)
		}
		eng.Run(120 * day)
		for i, o := range sink.objects {
			hour := int(sink.times[i]/time.Hour) % 24
			switch {
			case hour >= 9 && hour < 17:
				working++
			case hour >= 21 || hour < 7:
				night++
			}
			total += o.Size
		}
		return working, night, total
	}
	w, n, totalDiurnal := run(true)
	if w == 0 || n > w/5 {
		t.Errorf("diurnal: %d working-hour vs %d night arrivals; want strong concentration", w, n)
	}
	// Mean-one weights keep the overall volume comparable.
	_, _, totalFlat := run(false)
	ratio := float64(totalDiurnal) / float64(totalFlat)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("diurnal volume ratio = %.2f, want near 1", ratio)
	}
	// The weights themselves average to one over a day.
	sum := 0.0
	for h := 0; h < 24; h++ {
		sum += diurnalWeight(h)
	}
	if mean := sum / 24; mean < 0.95 || mean > 1.05 {
		t.Errorf("diurnal weight mean = %.3f, want ~1", mean)
	}
}
