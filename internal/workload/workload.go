// Package workload generates the object arrival streams of the paper's
// three evaluation scenarios: the single-application ramp of Section 5.1,
// the single-instructor lecture capture of Section 5.2, and the
// university-wide capture of Section 5.3.
//
// Generators schedule arrival events on a sim.Engine and hand each arriving
// object to a Sink; single-unit experiments sink into a store.Unit, the
// distributed experiment sinks into the cluster placement algorithm. All
// randomness flows through an injected *rand.Rand, so a fixed seed
// reproduces a run bit-for-bit.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"besteffs/internal/object"
	"besteffs/internal/sim"
	"besteffs/internal/store"
)

// Size units.
const (
	// KB, MB, GB are binary byte multiples.
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Sink consumes generated arrivals. Offer must not retain err-state between
// calls; generators keep offering subsequent objects regardless of
// rejections (a rejection is a measurement, not a failure).
type Sink interface {
	// Offer presents one arriving object at virtual time now.
	Offer(o *object.Object, now time.Duration) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(o *object.Object, now time.Duration) error

// Offer implements Sink.
func (f SinkFunc) Offer(o *object.Object, now time.Duration) error { return f(o, now) }

// UnitSink offers every arrival to a single storage unit. Policy decisions
// (admit, reject, evictions) surface through the unit's hooks.
type UnitSink struct {
	// Unit is the destination storage unit.
	Unit *store.Unit
}

var _ Sink = UnitSink{}

// Offer implements Sink by calling Unit.Put. Rejections are not errors;
// only protocol misuse (duplicate IDs) is.
func (s UnitSink) Offer(o *object.Object, now time.Duration) error {
	if _, err := s.Unit.Put(o, now); err != nil {
		return fmt.Errorf("workload: offer %s: %w", o.ID, err)
	}
	return nil
}

// Common configuration errors.
var (
	// ErrNilSink reports a generator without a destination.
	ErrNilSink = errors.New("workload: nil sink")
	// ErrNilEngine reports a generator without a simulation engine.
	ErrNilEngine = errors.New("workload: nil engine")
	// ErrNilRand reports a generator without a random source.
	ErrNilRand = errors.New("workload: nil random source")
)

// Arrival is one generated object offered to a sink, retained by generators
// that keep an arrival log for time-constant analysis.
type Arrival struct {
	// Time is the arrival's virtual time.
	Time time.Duration
	// Size is the object size in bytes.
	Size int64
}

// errCollector records failures that surface inside scheduled events, where
// there is no return path to the caller. Experiment runners check Err after
// the simulation completes; a non-nil value means the run is invalid
// (duplicate IDs or a broken sink), never a mere policy rejection.
type errCollector struct {
	err error
}

// record keeps the first error.
func (c *errCollector) record(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first error recorded during event processing.
func (c *errCollector) Err() error { return c.err }

// checkCommon validates the plumbing every generator needs.
func checkCommon(eng *sim.Engine, sink Sink, rng *rand.Rand) error {
	if eng == nil {
		return ErrNilEngine
	}
	if sink == nil {
		return ErrNilSink
	}
	if rng == nil {
		return ErrNilRand
	}
	return nil
}
