package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/sim"
)

// TraceRow is one arrival of a recorded or hand-written trace.
type TraceRow struct {
	// At is the arrival's virtual time.
	At time.Duration
	// ID names the object; unique within the trace.
	ID object.ID
	// Size is the payload size in bytes.
	Size int64
	// Importance is the annotation.
	Importance importance.Function
	// Owner and Class are optional creator metadata.
	Owner string
	Class object.Class
}

// traceHeader is the canonical CSV column order.
var traceHeader = []string{"t", "id", "size_bytes", "importance", "owner", "class"}

// ErrBadTrace reports an unparsable trace file.
var ErrBadTrace = errors.New("workload: bad trace")

// ReadTrace parses a CSV arrival trace. The format is one header line
// ("t,id,size_bytes,importance,owner,class") followed by one row per
// arrival: t is a Go duration with the day extension ("36h", "30d"), the
// importance column uses the spec syntax ("twostep:p=1,persist=15d,wane=15d"),
// owner may be empty and class is the integer object class. Rows must be
// sorted by non-decreasing t.
func ReadTrace(r io.Reader) ([]TraceRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: read header: %v", ErrBadTrace, err)
	}
	for i, want := range traceHeader {
		if header[i] != want {
			return nil, fmt.Errorf("%w: header column %d is %q, want %q",
				ErrBadTrace, i, header[i], want)
		}
	}
	var rows []TraceRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, line, err)
		}
		row, err := parseTraceRow(rec)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, line, err)
		}
		if n := len(rows); n > 0 && row.At < rows[n-1].At {
			return nil, fmt.Errorf("%w: line %d: arrivals not sorted by time", ErrBadTrace, line)
		}
		rows = append(rows, row)
	}
}

func parseTraceRow(rec []string) (TraceRow, error) {
	var row TraceRow
	at, err := importance.ParseDuration(rec[0])
	if err != nil {
		return TraceRow{}, fmt.Errorf("t: %v", err)
	}
	row.At = at
	if rec[1] == "" {
		return TraceRow{}, errors.New("empty id")
	}
	row.ID = object.ID(rec[1])
	size, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return TraceRow{}, fmt.Errorf("size: %v", err)
	}
	if size <= 0 {
		return TraceRow{}, fmt.Errorf("size %d must be positive", size)
	}
	row.Size = size
	if row.Importance, err = importance.ParseSpec(rec[3]); err != nil {
		return TraceRow{}, fmt.Errorf("importance: %v", err)
	}
	row.Owner = rec[4]
	class, err := strconv.Atoi(rec[5])
	if err != nil {
		return TraceRow{}, fmt.Errorf("class: %v", err)
	}
	row.Class = object.Class(class)
	return row, nil
}

// WriteTrace emits rows in the CSV format ReadTrace accepts, so a run's
// arrival log round-trips to a file and back.
func WriteTrace(w io.Writer, rows []TraceRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	for _, row := range rows {
		spec, err := importance.FormatSpec(row.Importance)
		if err != nil {
			return fmt.Errorf("workload: write trace %s: %w", row.ID, err)
		}
		rec := []string{
			row.At.String(),
			string(row.ID),
			strconv.FormatInt(row.Size, 10),
			spec,
			row.Owner,
			strconv.Itoa(int(row.Class)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: write trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	return nil
}

// Replay schedules a parsed trace onto the engine, offering each arrival
// to the sink at its recorded time.
type Replay struct {
	// Rows is the trace, sorted by time (as ReadTrace guarantees).
	Rows []TraceRow

	errCollector
}

// Install schedules the replay. Rows at or beyond the horizon are skipped
// and counted.
func (r *Replay) Install(eng *sim.Engine, sink Sink, horizon time.Duration) (skipped int, err error) {
	if eng == nil {
		return 0, ErrNilEngine
	}
	if sink == nil {
		return 0, ErrNilSink
	}
	for _, row := range r.Rows {
		if row.At >= horizon {
			skipped++
			continue
		}
		row := row
		err := eng.Schedule(row.At, func(now time.Duration) {
			o, err := object.New(row.ID, row.Size, now, row.Importance)
			if err != nil {
				r.record(fmt.Errorf("workload: replay %s: %w", row.ID, err))
				return
			}
			o.Owner = row.Owner
			o.Class = row.Class
			if err := sink.Offer(o, now); err != nil {
				r.record(err)
			}
		})
		if err != nil {
			return skipped, fmt.Errorf("workload: replay: %w", err)
		}
	}
	return skipped, nil
}
