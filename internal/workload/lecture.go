package workload

import (
	"fmt"
	"math/rand"
	"time"

	"besteffs/internal/calendar"
	"besteffs/internal/object"
	"besteffs/internal/sim"
)

// Lecture is the lecture-capture workload of Sections 5.2 (Courses == 1,
// one instructor recording every term) and 5.3 (Courses == 2321, the whole
// university). Lectures meet Monday/Wednesday/Friday during each term.
// Every lecture day each course produces one university-camera stream
// (1 Mbps in the paper) annotated with the Table 1 two-step lifetime, plus
// up to MaxStudentStreams student-created 320x240 streams at half the
// initial importance and a two-week wane.
//
// To keep the event queue small at university scale, the generator
// schedules one event per lecture day and emits that day's objects from the
// handler, spreading arrivals over the teaching hours.
type Lecture struct {
	// Courses is the number of concurrent courses each term (default 1).
	Courses int
	// UniversityBitrateMbps sizes camera streams (default 1.0, the
	// paper's "1 Mbps video stream").
	UniversityBitrateMbps float64
	// StudentBitrateMbps sizes student streams (default 0.3, a 320x240
	// MPEG4 stream for the video iPod / PSP).
	StudentBitrateMbps float64
	// MaxStudentStreams caps student interpretations per lecture
	// (default 3: "up to three students").
	MaxStudentStreams int
	// MinLectureMinutes and MaxLectureMinutes bound the uniformly drawn
	// lecture length (defaults 50 and 75).
	MinLectureMinutes, MaxLectureMinutes int
	// IDPrefix namespaces generated object IDs (default "lec").
	IDPrefix string
	// KeepLog retains the arrival log for time-constant analysis.
	KeepLog bool

	arrivals []Arrival
	counts   LectureCounts
	errCollector
}

// LectureCounts tallies the generated objects by class.
type LectureCounts struct {
	UniversityObjects, StudentObjects int
	UniversityBytes, StudentBytes     int64
}

// Arrivals returns the arrival log (only populated with KeepLog).
func (l *Lecture) Arrivals() []Arrival { return l.arrivals }

// Counts returns the per-class generation tallies.
func (l *Lecture) Counts() LectureCounts { return l.counts }

// Install schedules the workload on the engine from time zero to horizon.
func (l *Lecture) Install(eng *sim.Engine, sink Sink, rng *rand.Rand, horizon time.Duration) error {
	if err := checkCommon(eng, sink, rng); err != nil {
		return err
	}
	if l.Courses == 0 {
		l.Courses = 1
	}
	if l.Courses < 0 {
		return fmt.Errorf("workload: %d courses", l.Courses)
	}
	if l.UniversityBitrateMbps == 0 {
		l.UniversityBitrateMbps = 1.0
	}
	if l.StudentBitrateMbps == 0 {
		l.StudentBitrateMbps = 0.3
	}
	if l.MaxStudentStreams == 0 {
		l.MaxStudentStreams = 3
	}
	if l.MinLectureMinutes == 0 {
		l.MinLectureMinutes = 50
	}
	if l.MaxLectureMinutes == 0 {
		l.MaxLectureMinutes = 75
	}
	if l.MinLectureMinutes < 0 || l.MaxLectureMinutes < l.MinLectureMinutes {
		return fmt.Errorf("workload: bad lecture length bounds [%d, %d]",
			l.MinLectureMinutes, l.MaxLectureMinutes)
	}
	if l.IDPrefix == "" {
		l.IDPrefix = "lec"
	}

	for day := time.Duration(0); day < horizon; day += calendar.Day {
		if !calendar.IsLectureDay(day) {
			continue
		}
		day := day
		err := eng.Schedule(day+8*time.Hour, func(now time.Duration) {
			l.emitDay(sink, rng, day, now)
		})
		if err != nil {
			return fmt.Errorf("workload: schedule lecture day: %w", err)
		}
	}
	return nil
}

// emitDay generates every course's objects for one lecture day.
func (l *Lecture) emitDay(sink Sink, rng *rand.Rand, day, now time.Duration) {
	year, dayOfYear := calendar.DayOfYear(day)
	term := calendar.TermAt(day)
	for course := 0; course < l.Courses; course++ {
		// Spread the teaching day over 8h of class slots.
		at := now + time.Duration(rng.Intn(8*60))*time.Minute
		minutes := l.MinLectureMinutes
		if spread := l.MaxLectureMinutes - l.MinLectureMinutes; spread > 0 {
			minutes += rng.Intn(spread + 1)
		}
		base := fmt.Sprintf("%s/c%04d/y%d-%s/d%03d", l.IDPrefix, course, year, term, dayOfYear)
		l.emit(sink, object.ClassUniversity, object.ID(base+"/u"),
			streamBytes(l.UniversityBitrateMbps, minutes), at)
		for s, n := 0, rng.Intn(l.MaxStudentStreams+1); s < n; s++ {
			studentAt := at + time.Duration(1+rng.Intn(6*60))*time.Minute
			l.emit(sink, object.ClassStudent, object.ID(fmt.Sprintf("%s/s%d", base, s)),
				streamBytes(l.StudentBitrateMbps, minutes), studentAt)
		}
	}
}

// emit builds and offers one object.
func (l *Lecture) emit(sink Sink, class object.Class, id object.ID, size int64, at time.Duration) {
	lifetime, err := calendar.LectureLifetime(class, at)
	if err != nil {
		// A student arrival jittered past the end of the term keeps the
		// lifetime of the lecture's day.
		lifetime, err = calendar.LectureLifetime(class, at-calendar.Day)
		if err != nil {
			l.record(fmt.Errorf("workload: lifetime for %s: %w", id, err))
			return
		}
	}
	o, err := object.New(id, size, at, lifetime)
	if err != nil {
		l.record(fmt.Errorf("workload: bad lecture object %s: %w", id, err))
		return
	}
	o.Class = class
	switch class {
	case object.ClassStudent:
		o.Owner = "student"
		l.counts.StudentObjects++
		l.counts.StudentBytes += size
	default:
		o.Owner = "university"
		l.counts.UniversityObjects++
		l.counts.UniversityBytes += size
	}
	if l.KeepLog {
		l.arrivals = append(l.arrivals, Arrival{Time: at, Size: size})
	}
	if err := sink.Offer(o, at); err != nil {
		l.record(err)
	}
}

// streamBytes converts a bitrate and duration to a payload size.
func streamBytes(mbps float64, minutes int) int64 {
	return int64(mbps * 1e6 / 8 * float64(minutes) * 60)
}
