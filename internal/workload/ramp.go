package workload

import (
	"fmt"
	"math/rand"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/sim"
)

// Ramp is the Section 5.1 single-application workload: "objects constantly
// arrive into the system at a rate that is randomly distributed up to 0.5
// GB an hour for the first three months. Over the following three month
// intervals, this rate increases to 0.7 GB/hr, 1.0 GB/hr and 1.3 GB/hr."
//
// Each active hour produces one object whose size is drawn uniformly from
// (0, rate*1h]. Content creation is bursty rather than wall-to-wall, so an
// hour is active with probability DutyCycle; the default duty cycle of 0.3
// calibrates the paper's observation that a traditional 80 GB disk fills in
// "about 40 to 50 days" (expected Q1 volume 0.3 * 0.25 GB/hr = 1.8 GB/day,
// hence 80 GB at day ~44).
type Ramp struct {
	// QuarterRatesGBPerHour are the peak hourly rates per quarter of the
	// simulated run, cycled if the run is longer than the schedule.
	QuarterRatesGBPerHour []float64
	// QuarterLength is the length of one rate step (default 91 days).
	QuarterLength time.Duration
	// DutyCycle is the probability that a given hour produces an object
	// (default 0.3).
	DutyCycle float64
	// Diurnal concentrates activity into working hours (Section 5.1:
	// "in realistic deployments, these rates may depend on the time of
	// the day"): hours 9-17 carry triple weight, hours 0-6 almost none,
	// with the mean volume preserved.
	Diurnal bool
	// Lifetime annotates each arrival; it receives the arrival time so
	// calendars can shape the function. Required.
	Lifetime func(arrival time.Duration) importance.Function
	// IDPrefix namespaces generated object IDs (default "ramp").
	IDPrefix string
	// KeepLog retains the arrival log for time-constant analysis.
	KeepLog bool

	arrivals []Arrival
	errCollector
}

// DefaultRampRates are the paper's quarterly peak rates in GB/hour.
func DefaultRampRates() []float64 { return []float64{0.5, 0.7, 1.0, 1.3} }

// Arrivals returns the arrival log (only populated with KeepLog).
func (r *Ramp) Arrivals() []Arrival { return r.arrivals }

// Install schedules the workload on the engine from time zero to horizon,
// offering every arrival to sink. Randomness is drawn from rng at schedule
// time, so runs are deterministic per seed.
func (r *Ramp) Install(eng *sim.Engine, sink Sink, rng *rand.Rand, horizon time.Duration) error {
	if err := checkCommon(eng, sink, rng); err != nil {
		return err
	}
	if r.Lifetime == nil {
		return fmt.Errorf("workload: ramp needs a Lifetime function")
	}
	if len(r.QuarterRatesGBPerHour) == 0 {
		r.QuarterRatesGBPerHour = DefaultRampRates()
	}
	for i, rate := range r.QuarterRatesGBPerHour {
		if rate <= 0 {
			return fmt.Errorf("workload: quarter %d rate %v must be positive", i, rate)
		}
	}
	if r.QuarterLength <= 0 {
		r.QuarterLength = 91 * importance.Day
	}
	if r.DutyCycle == 0 {
		r.DutyCycle = 0.3
	}
	if r.DutyCycle < 0 || r.DutyCycle > 1 {
		return fmt.Errorf("workload: duty cycle %v out of [0, 1]", r.DutyCycle)
	}
	if r.IDPrefix == "" {
		r.IDPrefix = "ramp"
	}

	seq := 0
	for hour := time.Duration(0); hour < horizon; hour += time.Hour {
		duty := r.DutyCycle
		if r.Diurnal {
			duty *= diurnalWeight(int(hour/time.Hour) % 24)
		}
		if duty > 1 {
			duty = 1
		}
		if rng.Float64() >= duty {
			continue
		}
		quarter := int(hour/r.QuarterLength) % len(r.QuarterRatesGBPerHour)
		rate := r.QuarterRatesGBPerHour[quarter]
		size := int64(rng.Float64() * rate * float64(GB))
		if size <= 0 {
			size = 1
		}
		// Jitter the arrival within its hour for minute-level realism.
		at := hour + time.Duration(rng.Intn(60))*time.Minute
		seq++
		id := object.ID(fmt.Sprintf("%s/%06d", r.IDPrefix, seq))
		if err := r.scheduleArrival(eng, sink, id, size, at); err != nil {
			return err
		}
	}
	return nil
}

func (r *Ramp) scheduleArrival(eng *sim.Engine, sink Sink, id object.ID, size int64, at time.Duration) error {
	return eng.Schedule(at, func(now time.Duration) {
		o, err := object.New(id, size, now, r.Lifetime(now))
		if err != nil {
			r.record(fmt.Errorf("workload: bad generated object %s: %w", id, err))
			return
		}
		if r.KeepLog {
			r.arrivals = append(r.arrivals, Arrival{Time: now, Size: size})
		}
		if err := sink.Offer(o, now); err != nil {
			r.record(err)
		}
	})
}

// diurnalWeight scales the duty cycle by hour of day with mean one, so the
// total volume matches the non-diurnal workload: near zero overnight,
// triple during the 9-17 working block.
func diurnalWeight(hour int) float64 {
	switch {
	case hour >= 9 && hour < 17:
		return 2.6
	case hour >= 7 && hour < 9, hour >= 17 && hour < 21:
		return 0.55
	default: // 21-07: nights
		return 0.066
	}
}
