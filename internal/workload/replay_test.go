package workload

import (
	"errors"
	"strings"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/sim"
)

const sampleTrace = `t,id,size_bytes,importance,owner,class
1h0m0s,lec/1,1024,"twostep:p=1,persist=15d,wane=15d",prof,1
2h0m0s,cache/1,512,dirac,,0
30d,lec/2,2048,constant:p=0.5,student,2
`

func TestReadTrace(t *testing.T) {
	rows, err := ReadTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].At != time.Hour || rows[0].ID != "lec/1" || rows[0].Size != 1024 ||
		rows[0].Owner != "prof" || rows[0].Class != object.ClassUniversity {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if got := rows[0].Importance.At(10 * day); got != 1 {
		t.Errorf("row 0 importance at 10d = %v, want plateau 1", got)
	}
	if rows[1].Importance.At(0) != 0 {
		t.Errorf("row 1 should be Dirac")
	}
	if rows[2].At != 30*day || rows[2].Class != object.ClassStudent {
		t.Errorf("row 2 = %+v", rows[2])
	}
}

func TestReadTraceErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "time,id,size\n"},
		{"wrong column count", "t,id,size_bytes,importance,owner,class\n1h,x,1\n"},
		{"bad duration", "t,id,size_bytes,importance,owner,class\nsoon,x,1,dirac,,0\n"},
		{"empty id", "t,id,size_bytes,importance,owner,class\n1h,,1,dirac,,0\n"},
		{"bad size", "t,id,size_bytes,importance,owner,class\n1h,x,big,dirac,,0\n"},
		{"zero size", "t,id,size_bytes,importance,owner,class\n1h,x,0,dirac,,0\n"},
		{"bad importance", "t,id,size_bytes,importance,owner,class\n1h,x,1,cliff,,0\n"},
		{"bad class", "t,id,size_bytes,importance,owner,class\n1h,x,1,dirac,,two\n"},
		{"unsorted", "t,id,size_bytes,importance,owner,class\n2h,x,1,dirac,,0\n1h,y,1,dirac,,0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(tt.in)); !errors.Is(err, ErrBadTrace) {
				t.Errorf("err = %v, want ErrBadTrace", err)
			}
		})
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig, err := ReadTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	again, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadTrace(round trip): %v", err)
	}
	if len(again) != len(orig) {
		t.Fatalf("round trip changed row count: %d vs %d", len(again), len(orig))
	}
	for i := range orig {
		a, b := orig[i], again[i]
		if a.At != b.At || a.ID != b.ID || a.Size != b.Size ||
			a.Owner != b.Owner || a.Class != b.Class {
			t.Errorf("row %d changed: %+v vs %+v", i, a, b)
		}
		for _, age := range []time.Duration{0, 10 * day, 40 * day} {
			if a.Importance.At(age) != b.Importance.At(age) {
				t.Errorf("row %d importance changed at %v", i, age)
			}
		}
	}
}

func TestReplayInstall(t *testing.T) {
	rows, err := ReadTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	eng := sim.NewEngine()
	sink := &collectSink{}
	rep := &Replay{Rows: rows}
	// Horizon cuts off the 30-day row.
	skipped, err := rep.Install(eng, sink, 10*day)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	eng.Run(10 * day)
	if err := rep.Err(); err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if len(sink.objects) != 2 {
		t.Fatalf("offered = %d, want 2", len(sink.objects))
	}
	if sink.objects[0].ID != "lec/1" || sink.times[0] != time.Hour {
		t.Errorf("first offer = %v at %v", sink.objects[0].ID, sink.times[0])
	}
	if sink.objects[0].Owner != "prof" || sink.objects[0].Class != object.ClassUniversity {
		t.Errorf("metadata lost: %+v", sink.objects[0])
	}
}

func TestReplayValidation(t *testing.T) {
	rep := &Replay{}
	if _, err := rep.Install(nil, &collectSink{}, day); !errors.Is(err, ErrNilEngine) {
		t.Errorf("nil engine err = %v", err)
	}
	if _, err := rep.Install(sim.NewEngine(), nil, day); !errors.Is(err, ErrNilSink) {
		t.Errorf("nil sink err = %v", err)
	}
}

func TestReplaySinkError(t *testing.T) {
	rows := []TraceRow{{At: time.Hour, ID: "x", Size: 1, Importance: importance.Dirac{}}}
	eng := sim.NewEngine()
	boom := errors.New("boom")
	rep := &Replay{Rows: rows}
	if _, err := rep.Install(eng, SinkFunc(func(*object.Object, time.Duration) error {
		return boom
	}), day); err != nil {
		t.Fatalf("Install: %v", err)
	}
	eng.Run(day)
	if !errors.Is(rep.Err(), boom) {
		t.Errorf("Err = %v, want boom", rep.Err())
	}
}
