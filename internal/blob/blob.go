// Package blob stores object payloads for live Besteffs nodes. The storage
// unit (package store) tracks metadata and makes reclamation decisions;
// a blob.Store holds the bytes. Two implementations are provided: an
// in-memory map for tests and simulations, and a crash-safe file store
// (write-to-temp, fsync, rename) for the besteffsd daemon, where payloads
// must survive living on a real desktop disk -- the paper's deployment
// target is "unused desktop storage as well as dedicated storage bricks".
//
// Consistent with Besteffs semantics, the file store provides no more
// durability than a single copy on the underlying disk; there is no
// replication and no write-ahead metadata log. Both stores do, however,
// record a CRC-32 of each payload at Put and verify it at Get, so a
// bit-flipped payload surfaces as ErrCorrupt instead of being served
// silently.
package blob

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"besteffs/internal/object"
)

// ErrNotFound reports a missing payload.
var ErrNotFound = errors.New("blob: not found")

// ErrCorrupt reports a payload whose bytes no longer match the CRC-32
// recorded when it was stored -- a bit flip on disk or in memory. Corrupt
// payloads are detected on read and never served silently.
var ErrCorrupt = errors.New("blob: corrupt payload")

// fileMagic prefixes checksummed payload files: magic, then a 4-byte
// big-endian CRC-32 (IEEE) of the payload, then the payload bytes. Files
// without the magic are legacy raw payloads and are served unverified.
var fileMagic = []byte{0xbe, 0xef, 0x0b, 0x01}

// Store holds object payloads keyed by object ID. Implementations must be
// safe for concurrent use.
type Store interface {
	// Put stores a payload, replacing any previous payload for the ID.
	Put(id object.ID, payload []byte) error
	// Get returns the payload for the ID, or ErrNotFound.
	Get(id object.ID) ([]byte, error)
	// Delete removes the payload; deleting an absent ID is not an error.
	Delete(id object.ID) error
}

// Verifier is implemented by stores that can check a payload's integrity
// in place without handing the bytes to the caller. Verify returns nil for
// an intact payload, ErrNotFound for a missing one and ErrCorrupt when the
// stored bytes no longer match their recorded CRC-32. The scrubber and
// fsck use it to sweep a store without copying every payload through the
// heap.
type Verifier interface {
	Verify(id object.ID) error
}

// Summer is implemented by stores that can report a payload's recorded
// CRC-32 without reading the bytes out. Anti-entropy index exchange uses it
// to summarize every resident object cheaply.
type Summer interface {
	Sum(id object.ID) (uint32, error)
}

// MemStore is an in-memory Store. The zero value is not usable; construct
// with NewMemStore.
type MemStore struct {
	mu       sync.Mutex
	payloads map[object.ID][]byte
	sums     map[object.ID]uint32
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		payloads: make(map[object.ID][]byte),
		sums:     make(map[object.ID]uint32),
	}
}

// Put implements Store.
//
//besteffs:hotpath-ok persisting the payload copies it; that copy is the store's contract
func (s *MemStore) Put(id object.ID, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.payloads[id] = cp
	s.sums[id] = crc32.ChecksumIEEE(cp)
	return nil
}

// Get implements Store. A payload whose bytes no longer match their stored
// CRC-32 yields ErrCorrupt.
func (s *MemStore) Get(id object.ID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.payloads[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if crc32.ChecksumIEEE(p) != s.sums[id] {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, id)
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	return cp, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id object.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.payloads, id)
	delete(s.sums, id)
	return nil
}

// Verify implements Verifier without copying the payload out.
func (s *MemStore) Verify(id object.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.payloads[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if crc32.ChecksumIEEE(p) != s.sums[id] {
		return fmt.Errorf("%w: %s", ErrCorrupt, id)
	}
	return nil
}

// Sum implements Summer.
func (s *MemStore) Sum(id object.ID) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, ok := s.sums[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return sum, nil
}

// Corrupt flips one payload byte and leaves the recorded CRC alone,
// simulating in-memory bit rot for scrubber tests. It returns ErrNotFound
// for an absent or empty payload.
func (s *MemStore) Corrupt(id object.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.payloads[id]
	if !ok || len(p) == 0 {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	p[0] ^= 0xff
	return nil
}

// Len returns the number of stored payloads.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.payloads)
}

// FileStore keeps each payload in one file under a root directory. Writes
// go to a temporary file in the same directory and are renamed into place
// after an fsync, so a crash never leaves a torn payload visible. Object
// IDs are hex-encoded into file names, so arbitrary IDs (including path
// separators) cannot escape the root.
type FileStore struct {
	root string
	// writeMu serializes temp-name generation only; payload writes
	// themselves proceed concurrently per file.
	seq   uint64
	seqMu sync.Mutex
}

var _ Store = (*FileStore)(nil)

// NewFileStore opens (creating if needed) a file store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: create root: %w", err)
	}
	return &FileStore{root: dir}, nil
}

// Root returns the store's root directory.
func (s *FileStore) Root() string { return s.root }

// path maps an object ID to its file path.
func (s *FileStore) path(id object.ID) string {
	return filepath.Join(s.root, hex.EncodeToString([]byte(id))+".obj")
}

// tempName returns a unique temp file path in the root.
func (s *FileStore) tempName() string {
	s.seqMu.Lock()
	s.seq++
	n := s.seq
	s.seqMu.Unlock()
	return filepath.Join(s.root, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), n))
}

// Put implements Store with an atomic write: temp file, fsync, rename. The
// file carries a CRC-32 header so Get can detect bit rot.
//
//besteffs:hotpath-ok atomic file persistence: temp write, fsync and rename are the contract
func (s *FileStore) Put(id object.ID, payload []byte) error {
	tmp := s.tempName()
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blob: create temp: %w", err)
	}
	var hdr [8]byte
	copy(hdr[:4], fileMagic)
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(hdr[:]); err != nil {
		//lint:ignore uncheckederr already returning the write error; the temp file is removed
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blob: write header: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		//lint:ignore uncheckederr already returning the write error; the temp file is removed
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blob: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore uncheckederr already returning the sync error; the temp file is removed
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blob: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blob: close: %w", err)
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blob: rename: %w", err)
	}
	return nil
}

// Get implements Store. Checksummed files (the current format) are
// verified against their CRC-32 header and yield ErrCorrupt on mismatch;
// files without the magic are legacy raw payloads returned unverified.
func (s *FileStore) Get(id object.ID) ([]byte, error) {
	b, err := os.ReadFile(s.path(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("blob: read: %w", err)
	}
	if len(b) < 8 || !bytes.Equal(b[:4], fileMagic) {
		return b, nil // legacy file: raw payload, nothing to verify
	}
	want := binary.BigEndian.Uint32(b[4:8])
	payload := b[8:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, id)
	}
	return payload, nil
}

// Verify implements Verifier: it re-reads the file and checks the CRC-32
// header without returning the payload. Legacy files (no magic) carry no
// checksum and verify vacuously.
func (s *FileStore) Verify(id object.ID) error {
	b, err := os.ReadFile(s.path(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return fmt.Errorf("blob: read: %w", err)
	}
	if len(b) < 8 || !bytes.Equal(b[:4], fileMagic) {
		return nil // legacy file: no checksum to verify
	}
	if crc32.ChecksumIEEE(b[8:]) != binary.BigEndian.Uint32(b[4:8]) {
		return fmt.Errorf("%w: %s", ErrCorrupt, id)
	}
	return nil
}

// Sum implements Summer by reading only the 8-byte header. Legacy files
// (no magic) are read fully and summed on the fly.
func (s *FileStore) Sum(id object.ID) (uint32, error) {
	f, err := os.Open(s.path(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return 0, fmt.Errorf("blob: open: %w", err)
	}
	defer f.Close()
	var hdr [8]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return 0, fmt.Errorf("blob: read header: %w", err)
	}
	if n == 8 && bytes.Equal(hdr[:4], fileMagic) {
		return binary.BigEndian.Uint32(hdr[4:]), nil
	}
	// Legacy file: the whole file is the payload.
	h := crc32.NewIEEE()
	if _, err := h.Write(hdr[:n]); err != nil {
		return 0, fmt.Errorf("blob: sum: %w", err)
	}
	if _, err := io.Copy(h, f); err != nil {
		return 0, fmt.Errorf("blob: sum: %w", err)
	}
	return h.Sum32(), nil
}

// Delete implements Store.
func (s *FileStore) Delete(id object.ID) error {
	if err := os.Remove(s.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blob: delete: %w", err)
	}
	return nil
}

// IDs returns the object IDs present on disk, for startup inspection.
func (s *FileStore) IDs() ([]object.ID, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("blob: list: %w", err)
	}
	var ids []object.ID
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".obj" {
			continue
		}
		raw, err := hex.DecodeString(name[:len(name)-len(".obj")])
		if err != nil {
			continue // foreign file; ignore
		}
		ids = append(ids, object.ID(raw))
	}
	return ids, nil
}
