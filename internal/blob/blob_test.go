package blob

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"besteffs/internal/object"
)

// storeTests exercises the Store contract against any implementation.
func storeTests(t *testing.T, s Store) {
	t.Helper()
	// Missing payloads report ErrNotFound.
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing err = %v, want ErrNotFound", err)
	}
	// Round trip.
	payload := []byte("the payload bytes")
	if err := s.Put("a/b/c", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("a/b/c")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("Get = %q, want %q", got, payload)
	}
	// Replace.
	if err := s.Put("a/b/c", []byte("v2")); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	got, err = s.Get("a/b/c")
	if err != nil || string(got) != "v2" {
		t.Errorf("Get after replace = %q, %v", got, err)
	}
	// Delete is idempotent.
	if err := s.Delete("a/b/c"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete("a/b/c"); err != nil {
		t.Errorf("second Delete: %v", err)
	}
	if _, err := s.Get("a/b/c"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete err = %v, want ErrNotFound", err)
	}
	// Hostile IDs must not escape or collide.
	hostile := []object.ID{"../../etc/passwd", "..", ".", "a//b", "a\x00b"}
	for i, id := range hostile {
		if err := s.Put(id, []byte{byte(i)}); err != nil {
			t.Fatalf("Put hostile %q: %v", id, err)
		}
	}
	for i, id := range hostile {
		got, err := s.Get(id)
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Errorf("hostile %q = %v, %v", id, got, err)
		}
	}
}

func TestMemStore(t *testing.T) {
	storeTests(t, NewMemStore())
}

func TestFileStore(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	storeTests(t, s)
}

func TestMemStoreCopiesPayloads(t *testing.T) {
	s := NewMemStore()
	payload := []byte("abc")
	if err := s.Put("x", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	payload[0] = 'z' // must not alias into the store
	got, err := s.Get("x")
	if err != nil || got[0] != 'a' {
		t.Errorf("store aliased caller slice: %q, %v", got, err)
	}
	got[1] = 'z' // must not alias out of the store
	again, err := s.Get("x")
	if err != nil || again[1] != 'b' {
		t.Errorf("store leaked internal slice: %q, %v", again, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestFileStoreFilesStayUnderRoot(t *testing.T) {
	root := t.TempDir()
	s, err := NewFileStore(root)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := s.Put("../escape", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Nothing outside the root.
	parent := filepath.Dir(root)
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() == "escape" {
			t.Fatal("payload escaped the root directory")
		}
	}
	// Exactly one .obj file inside, no leftover temp files.
	inside, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("ReadDir root: %v", err)
	}
	objs := 0
	for _, e := range inside {
		if filepath.Ext(e.Name()) == ".obj" {
			objs++
		} else {
			t.Errorf("unexpected file %q in root", e.Name())
		}
	}
	if objs != 1 {
		t.Errorf("objs = %d, want 1", objs)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	root := t.TempDir()
	s, err := NewFileStore(root)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := s.Put("survivor", []byte("data")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	reopened, err := NewFileStore(root)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := reopened.Get("survivor")
	if err != nil || string(got) != "data" {
		t.Errorf("after reopen: %q, %v", got, err)
	}
	ids, err := reopened.IDs()
	if err != nil || len(ids) != 1 || ids[0] != "survivor" {
		t.Errorf("IDs = %v, %v", ids, err)
	}
}

func TestFileStoreIDsIgnoresForeignFiles(t *testing.T) {
	root := t.TempDir()
	s, err := NewFileStore(root)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := os.WriteFile(filepath.Join(root, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := os.WriteFile(filepath.Join(root, "zz-not-hex.obj"), []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ids, err := s.IDs()
	if err != nil || len(ids) != 0 {
		t.Errorf("IDs = %v, %v; want empty", ids, err)
	}
}

func TestFileStoreConcurrent(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id := object.ID(fmt.Sprintf("w%d/o%d", w, i))
				if err := s.Put(id, []byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(id); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 2 {
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	root := t.TempDir()
	s, err := NewFileStore(root)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	if err := s.Put("victim", []byte("precious bytes")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Flip one payload bit on disk.
	path := s.path("victim")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := s.Get("victim"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get bit-flipped payload err = %v, want ErrCorrupt", err)
	}
	// A header flip (stored checksum itself) is also detected.
	raw[len(raw)-1] ^= 0x01 // restore payload
	raw[5] ^= 0x80          // corrupt the CRC field
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := s.Get("victim"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get with flipped CRC err = %v, want ErrCorrupt", err)
	}
}

func TestFileStoreServesLegacyRawFiles(t *testing.T) {
	root := t.TempDir()
	s, err := NewFileStore(root)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	// A pre-checksum file: raw payload, no magic header.
	if err := os.WriteFile(s.path("old"), []byte("legacy payload"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := s.Get("old")
	if err != nil || string(got) != "legacy payload" {
		t.Errorf("Get legacy = %q, %v", got, err)
	}
}

// verifierTests exercises the Verifier contract against any implementation:
// intact payloads verify, missing ones report ErrNotFound, and Verify does
// not disturb the stored bytes.
func verifierTests(t *testing.T, s Store) {
	t.Helper()
	v, ok := s.(Verifier)
	if !ok {
		t.Fatalf("%T does not implement Verifier", s)
	}
	if err := v.Verify("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Verify missing err = %v, want ErrNotFound", err)
	}
	if err := s.Put("ok", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := v.Verify("ok"); err != nil {
		t.Errorf("Verify intact payload: %v", err)
	}
	if got, err := s.Get("ok"); err != nil || string(got) != "payload" {
		t.Errorf("Get after Verify = %q, %v", got, err)
	}
}

func TestMemStoreVerify(t *testing.T) {
	s := NewMemStore()
	verifierTests(t, s)
	if err := s.Corrupt("ok"); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	if err := s.Verify("ok"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Verify corrupted payload err = %v, want ErrCorrupt", err)
	}
	if err := s.Corrupt("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Corrupt missing err = %v, want ErrNotFound", err)
	}
}

func TestFileStoreVerify(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	verifierTests(t, s)
	// Flip one payload byte on disk: Verify must report ErrCorrupt.
	path := s.path("ok")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := s.Verify("ok"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Verify bit-flipped payload err = %v, want ErrCorrupt", err)
	}
	// Legacy files carry no checksum and verify vacuously.
	if err := os.WriteFile(s.path("old"), []byte("legacy"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := s.Verify("old"); err != nil {
		t.Errorf("Verify legacy file: %v", err)
	}
}

func TestMemStoreDetectsCorruption(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("victim", []byte("precious")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.mu.Lock()
	s.payloads["victim"][0] ^= 0x01 // simulated in-memory bit flip
	s.mu.Unlock()
	if _, err := s.Get("victim"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get corrupted payload err = %v, want ErrCorrupt", err)
	}
}
