package calendar

import (
	"errors"
	"testing"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

func TestDayOfYear(t *testing.T) {
	cases := []struct {
		in       time.Duration
		wantYear int
		wantDay  int
	}{
		{0, 0, 0},
		{5 * Day, 0, 5},
		{Year, 1, 0},
		{Year + 100*Day, 1, 100},
		{3*Year + 364*Day, 3, 364},
		{-Day, 0, 0},
	}
	for _, tt := range cases {
		y, d := DayOfYear(tt.in)
		if y != tt.wantYear || d != tt.wantDay {
			t.Errorf("DayOfYear(%v) = %d, %d; want %d, %d", tt.in, y, d, tt.wantYear, tt.wantDay)
		}
	}
}

func TestTimeOfRoundTrip(t *testing.T) {
	for _, tt := range []struct{ year, day int }{{0, 0}, {2, 150}, {9, 364}} {
		got := TimeOf(tt.year, tt.day)
		y, d := DayOfYear(got)
		if y != tt.year || d != tt.day {
			t.Errorf("DayOfYear(TimeOf(%d, %d)) = %d, %d", tt.year, tt.day, y, d)
		}
	}
}

func TestTermAt(t *testing.T) {
	cases := []struct {
		day  int
		want Term
	}{
		{0, TermBreak},   // new year break
		{7, TermBreak},   // day before spring
		{8, TermSpring},  // spring begins
		{60, TermSpring}, // mid spring
		{120, TermSpring},
		{121, TermBreak}, // summer break
		{150, TermSummer},
		{210, TermSummer},
		{211, TermBreak},
		{247, TermBreak},
		{248, TermFall},
		{300, TermFall},
		{360, TermFall},
		{361, TermBreak}, // winter break
	}
	for _, tt := range cases {
		if got := TermAt(TimeOf(1, tt.day)); got != tt.want {
			t.Errorf("TermAt(day %d) = %v, want %v", tt.day, got, tt.want)
		}
	}
}

func TestTermBounds(t *testing.T) {
	spring, ok := TermBounds(TermSpring)
	if !ok || spring.Begin != 8 || spring.End != 120 || spring.Wane != 730*Day {
		t.Errorf("spring bounds = %+v, %v", spring, ok)
	}
	summer, ok := TermBounds(TermSummer)
	if !ok || summer.Begin != 150 || summer.End != 210 || summer.Wane != 365*Day {
		t.Errorf("summer bounds = %+v, %v", summer, ok)
	}
	fall, ok := TermBounds(TermFall)
	if !ok || fall.Begin != 248 || fall.End != 360 || fall.Wane != 850*Day {
		t.Errorf("fall bounds = %+v, %v", fall, ok)
	}
	if _, ok := TermBounds(TermBreak); ok {
		t.Error("TermBreak should have no bounds")
	}
}

func TestLectureLifetimeTable1(t *testing.T) {
	// Table 1: a spring lecture captured on day 50 persists 120-50 = 70
	// days and wanes over 730 days at importance 1.
	f, err := LectureLifetime(object.ClassUniversity, TimeOf(0, 50))
	if err != nil {
		t.Fatalf("LectureLifetime: %v", err)
	}
	if f.Plateau != 1 || f.Persist != 70*Day || f.Wane != 730*Day {
		t.Errorf("spring university lifetime = %+v", f)
	}

	// A summer lecture on day 160 persists 210-160 = 50 days, wanes 365.
	f, err = LectureLifetime(object.ClassUniversity, TimeOf(2, 160))
	if err != nil {
		t.Fatalf("LectureLifetime: %v", err)
	}
	if f.Persist != 50*Day || f.Wane != 365*Day {
		t.Errorf("summer university lifetime = %+v", f)
	}

	// A fall lecture on day 300 persists 60 days, wanes 850.
	f, err = LectureLifetime(object.ClassUniversity, TimeOf(0, 300))
	if err != nil {
		t.Fatalf("LectureLifetime: %v", err)
	}
	if f.Persist != 60*Day || f.Wane != 850*Day {
		t.Errorf("fall university lifetime = %+v", f)
	}

	// Student objects: plateau 0.5, same persist, two-week wane.
	f, err = LectureLifetime(object.ClassStudent, TimeOf(0, 50))
	if err != nil {
		t.Fatalf("LectureLifetime: %v", err)
	}
	if f.Plateau != StudentPlateau || f.Persist != 70*Day || f.Wane != StudentWane {
		t.Errorf("student lifetime = %+v", f)
	}
}

func TestLectureLifetimeOutsideTerm(t *testing.T) {
	if _, err := LectureLifetime(object.ClassUniversity, TimeOf(0, 130)); !errors.Is(err, ErrOutsideTerm) {
		t.Errorf("break lifetime err = %v, want ErrOutsideTerm", err)
	}
}

func TestLectureLifetimeIsValid(t *testing.T) {
	// Every in-term day must yield a valid monotone function for both
	// classes.
	for day := 0; day < YearDays; day++ {
		at := TimeOf(0, day)
		if TermAt(at) == TermBreak {
			continue
		}
		for _, class := range []object.Class{object.ClassUniversity, object.ClassStudent} {
			f, err := LectureLifetime(class, at)
			if err != nil {
				t.Fatalf("day %d class %v: %v", day, class, err)
			}
			if err := importance.Validate(f); err != nil {
				t.Fatalf("day %d class %v: invalid lifetime: %v", day, class, err)
			}
		}
	}
}

func TestWeekdayAndLectureDay(t *testing.T) {
	if Weekday(0) != 0 || Weekday(Day) != 1 || Weekday(7*Day) != 0 {
		t.Error("Weekday arithmetic broken")
	}
	if Weekday(-Day) != 0 {
		t.Error("negative time Weekday should clamp to 0")
	}
	// Day 8 of year 0: Weekday(8d) = 1 (Tuesday) -> not a lecture day;
	// day 9 is Wednesday -> lecture day.
	if IsLectureDay(TimeOf(0, 8)) {
		t.Error("Tuesday flagged as MWF lecture day")
	}
	if !IsLectureDay(TimeOf(0, 9)) {
		t.Error("Wednesday not flagged as lecture day")
	}
	if IsLectureDay(TimeOf(0, 130)) {
		t.Error("break day flagged as lecture day")
	}
}

func TestTermString(t *testing.T) {
	for term, want := range map[Term]string{
		TermSpring: "spring", TermSummer: "summer", TermFall: "fall", TermBreak: "break",
	} {
		if got := term.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(term), got, want)
		}
	}
	if got := Term(42).String(); got != "term(42)" {
		t.Errorf("unknown term String = %q", got)
	}
}
