// Package calendar encodes the academic calendar and the Table 1 lifetime
// parameters of the paper's lecture-capture scenario (Section 5.2.1).
//
// The simulated year is 365 days; virtual time zero is midnight of January
// 1st of year zero. The paper's terms are: spring starts after the first
// week of January (day 8) and runs to mid-May (day 120); summer starts at
// day 150 and runs two months to day 210; fall starts in the second week of
// September (day 248) and runs to the end of the year (day 360).
package calendar

import (
	"errors"
	"fmt"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/object"
)

// Day is one simulated day.
const Day = importance.Day

// YearDays is the length of the simulated year in days (leap years are
// ignored, as in the paper's simulator).
const YearDays = 365

// Year is one simulated year.
const Year = YearDays * Day

// Term is an academic term.
type Term int

// Terms of the academic year. TermBreak marks days outside any term.
const (
	TermBreak Term = iota
	TermSpring
	TermSummer
	TermFall
)

// String returns the lower-case term name.
func (t Term) String() string {
	switch t {
	case TermSpring:
		return "spring"
	case TermSummer:
		return "summer"
	case TermFall:
		return "fall"
	case TermBreak:
		return "break"
	default:
		return fmt.Sprintf("term(%d)", int(t))
	}
}

// Bounds gives a term's first and last day of year (both inclusive),
// straight from Table 1 and the Section 5.2.1 narrative.
type Bounds struct {
	// Begin is the first day of classes (day of year).
	Begin int
	// End is the last day of classes (day of year); lifetimes persist
	// until this day.
	End int
	// Wane is how long importance takes to reach zero after End for
	// university-created objects.
	Wane time.Duration
}

// bounds holds the paper's Table 1 parameters.
var bounds = map[Term]Bounds{
	TermSpring: {Begin: 8, End: 120, Wane: 730 * Day},
	TermSummer: {Begin: 150, End: 210, Wane: 365 * Day},
	TermFall:   {Begin: 248, End: 360, Wane: 850 * Day},
}

// TermBounds returns the bounds of a term; ok is false for TermBreak or an
// unknown term.
func TermBounds(t Term) (Bounds, bool) {
	b, ok := bounds[t]
	return b, ok
}

// StudentWane is how long a student-created object's importance takes to
// reach zero after the end of its term: "gradually dropping in importance
// two weeks after the end of the term".
const StudentWane = 14 * Day

// StudentPlateau is the initial importance of student-created streams,
// versus 1.0 for the university-maintained cameras.
const StudentPlateau = 0.5

// DayOfYear splits virtual time t into (year, day-of-year). Days of year
// count from zero; negative times are an error for callers and clamp to
// time zero.
func DayOfYear(t time.Duration) (year, day int) {
	if t < 0 {
		return 0, 0
	}
	days := int(t / Day)
	return days / YearDays, days % YearDays
}

// TimeOf is the inverse of DayOfYear at midnight: the virtual time of the
// given day of the given year.
func TimeOf(year, day int) time.Duration {
	return time.Duration(year)*Year + time.Duration(day)*Day
}

// TermAt returns the term in session on the given virtual time, or
// TermBreak when classes are out.
func TermAt(t time.Duration) Term {
	_, day := DayOfYear(t)
	for _, term := range []Term{TermSpring, TermSummer, TermFall} {
		b := bounds[term]
		if day >= b.Begin && day <= b.End {
			return term
		}
	}
	return TermBreak
}

// ErrOutsideTerm reports a lecture lifetime requested for a time outside
// every term.
var ErrOutsideTerm = errors.New("calendar: time is outside every term")

// LectureLifetime builds the Table 1 two-step importance function for a
// lecture captured at virtual time t by a creator of the given class.
//
// University objects hold importance 1.0 until the end of the current term
// (persist = termEnd - today) and wane over the term's Wane (730, 365 or
// 850 days for spring, summer and fall). Student objects hold importance
// 0.5 until the end of the term and wane over two weeks.
func LectureLifetime(class object.Class, t time.Duration) (importance.TwoStep, error) {
	term := TermAt(t)
	b, ok := TermBounds(term)
	if !ok {
		return importance.TwoStep{}, fmt.Errorf("%w: %v", ErrOutsideTerm, t)
	}
	_, day := DayOfYear(t)
	persist := time.Duration(b.End-day) * Day
	switch class {
	case object.ClassStudent:
		return importance.NewTwoStep(StudentPlateau, persist, StudentWane)
	default:
		return importance.NewTwoStep(1, persist, b.Wane)
	}
}

// Weekday returns the day-of-week of virtual time t, with time zero defined
// to be a Monday (0 = Monday ... 6 = Sunday).
func Weekday(t time.Duration) int {
	if t < 0 {
		return 0
	}
	return int(t/Day) % 7
}

// IsLectureDay reports whether classes meet on t under a
// Monday/Wednesday/Friday schedule during a term.
func IsLectureDay(t time.Duration) bool {
	if TermAt(t) == TermBreak {
		return false
	}
	switch Weekday(t) {
	case 0, 2, 4: // Monday, Wednesday, Friday
		return true
	default:
		return false
	}
}
