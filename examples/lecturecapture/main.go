// Lecture capture: the paper's Section 5.2 scenario on one storage unit.
//
// A single instructor records every lecture (spring, summer and fall
// terms); up to three students add their own lower-resolution streams per
// lecture. University streams carry the Table 1 two-step lifetimes at
// importance 1.0; student streams start at 0.5 and wane two weeks after
// term. The example simulates three years on an 80 GB desktop disk and
// prints per-class outcomes: who got evicted, after how long, and at what
// importance -- the data behind Figures 9 and 10.
//
// Run with:
//
//	go run ./examples/lecturecapture
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"besteffs"
	"besteffs/internal/calendar"
	"besteffs/internal/sim"
	"besteffs/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const gb = int64(1) << 30
	years := 3
	horizon := time.Duration(years) * calendar.Year

	perClass := map[besteffs.Class][]besteffs.Eviction{}
	rejected := map[besteffs.Class]int{}
	unit, err := besteffs.NewUnit(80*gb, besteffs.TemporalImportance{},
		besteffs.WithEvictionHook(func(e besteffs.Eviction) {
			perClass[e.Object.Class] = append(perClass[e.Object.Class], e)
		}),
		besteffs.WithRejectionHook(func(r besteffs.Rejection) {
			rejected[r.Object.Class]++
		}),
	)
	if err != nil {
		return err
	}

	engine := sim.NewEngine()
	lec := &workload.Lecture{} // defaults: 1 course, 1 Mbps camera, <=3 students
	if err := lec.Install(engine, workload.UnitSink{Unit: unit},
		rand.New(rand.NewSource(2006)), horizon); err != nil {
		return err
	}

	// Sample the density at the end of every term to show the feedback
	// signal creators would use.
	fmt.Printf("simulating %d years of lecture capture on an 80 GB disk...\n\n", years)
	err = engine.Every(calendar.Day, 30*calendar.Day, horizon, func(now time.Duration) {
		year, day := calendar.DayOfYear(now)
		fmt.Printf("  y%d d%03d (%s): density %.3f, %3d objects resident\n",
			year, day, calendar.TermAt(now), unit.DensityAt(now), unit.Len())
	})
	if err != nil {
		return err
	}
	engine.Run(horizon)
	if err := lec.Err(); err != nil {
		return err
	}

	counts := lec.Counts()
	fmt.Printf("\ngenerated: %d university objects (%.1f GB), %d student objects (%.1f GB)\n",
		counts.UniversityObjects, float64(counts.UniversityBytes)/float64(gb),
		counts.StudentObjects, float64(counts.StudentBytes)/float64(gb))

	for _, class := range []besteffs.Class{besteffs.ClassUniversity, besteffs.ClassStudent} {
		evs := perClass[class]
		fmt.Printf("\n%s objects: %d evicted, %d rejected\n", class, len(evs), rejected[class])
		if len(evs) == 0 {
			continue
		}
		var lifetimes time.Duration
		minImp, maxImp := 1.0, 0.0
		for _, e := range evs {
			lifetimes += e.LifetimeAchieved
			if e.Importance < minImp {
				minImp = e.Importance
			}
			if e.Importance > maxImp {
				maxImp = e.Importance
			}
		}
		fmt.Printf("  mean lifetime achieved: %.0f days\n",
			(lifetimes/time.Duration(len(evs))).Hours()/24)
		fmt.Printf("  importance at reclamation: %.2f .. %.2f\n", minImp, maxImp)
	}

	fmt.Println("\nuniversity streams (importance 1.0 in term) persist for hundreds of days;")
	fmt.Println("student streams (importance 0.5) are the release valve under pressure")
	return nil
}
