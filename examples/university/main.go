// University-wide capture: the paper's Section 5.3 scenario on the
// simulated distributed store.
//
// Dozens of courses record lectures into a cluster of desktop-sized storage
// units joined by a p2p overlay. Placement follows the paper's algorithm:
// sample x units by random walk, probe each for the highest-importance
// object it would preempt, retry up to m rounds, and store on the unit with
// the lowest boundary. The example runs a scaled deployment (50 nodes, 50
// courses, two years) and prints the cluster-wide density, placement
// spread, and per-class outcomes.
//
// Run with:
//
//	go run ./examples/university
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"besteffs"
	"besteffs/internal/calendar"
	"besteffs/internal/cluster"
	"besteffs/internal/object"
	"besteffs/internal/sim"
	"besteffs/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const gb = int64(1) << 30
	const (
		nodes   = 50
		courses = 50
		years   = 2
	)
	horizon := time.Duration(years) * calendar.Year
	rng := rand.New(rand.NewSource(53))

	evicted := map[besteffs.Class]int{}
	rejected := map[besteffs.Class]int{}
	cl, err := besteffs.NewCluster(nodes, 80*gb, besteffs.TemporalImportance{}, 6, rng,
		besteffs.WithSampleSize(5),
		besteffs.WithMaxTries(3),
		cluster.WithEvictionHook(func(e cluster.Eviction) {
			evicted[e.Object.Class]++
		}),
		cluster.WithRejectionHook(func(r cluster.Rejection) {
			rejected[r.Object.Class]++
		}),
	)
	if err != nil {
		return err
	}

	engine := sim.NewEngine()
	generated := map[besteffs.Class]int{}
	sink := workload.SinkFunc(func(o *object.Object, now time.Duration) error {
		generated[o.Class]++
		return cl.Offer(o, now)
	})
	lec := &workload.Lecture{Courses: courses}
	if err := lec.Install(engine, sink, rng, horizon); err != nil {
		return err
	}

	fmt.Printf("simulating %d courses on %d nodes x 80 GB for %d years...\n\n",
		courses, nodes, years)
	err = engine.Every(90*calendar.Day, 90*calendar.Day, horizon, func(now time.Duration) {
		year, day := calendar.DayOfYear(now)
		fmt.Printf("  y%d d%03d: avg density %.3f, placements %d, cluster rejections %d\n",
			year, day, cl.AverageDensity(now), cl.Placements(), cl.Rejections())
	})
	if err != nil {
		return err
	}
	engine.Run(horizon)
	if err := lec.Err(); err != nil {
		return err
	}

	fmt.Println("\nper-class outcomes:")
	for _, class := range []besteffs.Class{besteffs.ClassUniversity, besteffs.ClassStudent} {
		fmt.Printf("  %-10s generated %6d, evicted %6d, rejected %5d (%.1f%%)\n",
			class, generated[class], evicted[class], rejected[class],
			100*float64(rejected[class])/float64(max(generated[class], 1)))
	}

	// Per-unit utilization spread: the overlay's random walks balance
	// load without central coordination.
	var minUtil, maxUtil, sum float64
	minUtil = 1
	for i := 0; i < cl.Len(); i++ {
		u, err := cl.Unit(i)
		if err != nil {
			return err
		}
		util := float64(u.Used()) / float64(u.Capacity())
		sum += util
		if util < minUtil {
			minUtil = util
		}
		if util > maxUtil {
			maxUtil = util
		}
	}
	fmt.Printf("\nunit utilization: min %.2f, mean %.2f, max %.2f across %d nodes\n",
		minUtil, sum/float64(cl.Len()), maxUtil, cl.Len())
	fmt.Printf("final cluster density: %.3f\n", cl.AverageDensity(horizon))
	fmt.Println("\nstudent streams are squeezed first; adding storage lengthens their")
	fmt.Println("lifetimes without changing any annotation (Section 5.3)")
	return nil
}
