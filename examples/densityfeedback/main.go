// Density feedback: choosing an annotation from the storage importance
// density.
//
// The paper's central usability claim (Sections 5.1.2 and 5.2.3) is that
// the storage importance density tells a content creator, before storing,
// how their annotation will fare: objects whose importance sits well above
// the density will persist, objects below it are rejected or quickly
// reclaimed. This example fills a unit with a mixed population, then probes
// it with candidate annotations at several importance levels and compares
// the probe outcome against the measured density.
//
// Run with:
//
//	go run ./examples/densityfeedback
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"besteffs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const mb = 1 << 20
	unit, err := besteffs.NewUnit(200*mb, besteffs.TemporalImportance{})
	if err != nil {
		return err
	}

	// Fill with a mixed population of two-step objects at varying ages,
	// like a store that has been running for a while.
	rng := rand.New(rand.NewSource(7))
	now := 40 * besteffs.Day
	for i := 0; unit.Free() >= 5*mb; i++ {
		// Ages spread over the last 40 days: importance from 1.0 (on the
		// plateau) down to ~0.15 (deep into the wane).
		arrival := now - time.Duration(rng.Intn(40))*besteffs.Day
		lifetime, err := besteffs.NewTwoStep(1, 15*besteffs.Day, 30*besteffs.Day)
		if err != nil {
			return err
		}
		o, err := besteffs.NewObject(
			besteffs.ObjectID(fmt.Sprintf("fill/%03d", i)), 5*mb, arrival, lifetime)
		if err != nil {
			return err
		}
		if _, err := unit.Put(o, now); err != nil {
			return err
		}
	}

	density := unit.DensityAt(now)
	fmt.Printf("storage importance density: %.3f\n", density)
	fmt.Println("probing candidate annotations (10 MB object):")
	fmt.Println()
	fmt.Println("importance  admissible  highest-preempted   guidance")

	for _, level := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		probe, err := besteffs.NewObject("probe", 10*mb, now, besteffs.Constant{Level: level})
		if err != nil {
			return err
		}
		d := unit.Probe(probe, now)
		guidance := "will be rejected: below the storage's full boundary"
		if d.Admit {
			switch {
			case level > density:
				guidance = "comfortably above the density: expect long persistence"
			default:
				guidance = "admitted, but close to the boundary: early reclamation likely"
			}
		}
		fmt.Printf("   %4.2f       %-5t       %4.2f            %s\n",
			level, d.Admit, d.HighestPreempted, guidance)
	}

	// Temporal annotations make the future computable: for a rejected
	// level, ask when the store will open up (no new arrivals assumed).
	fmt.Println()
	for _, level := range []float64{0.1, 0.25} {
		at, ok, err := unit.AdmissibleAt(10*mb, level, now, 40*besteffs.Day, besteffs.Day)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("a %.2f-importance object becomes admissible on day %.0f (current residents' decay)\n",
				level, float64(at)/float64(besteffs.Day))
		} else {
			fmt.Printf("a %.2f-importance object stays blocked for the whole 40-day horizon\n", level)
		}
	}

	fmt.Println()
	fmt.Println("the gap between an object's importance and the density predicts its longevity;")
	fmt.Println("at density 1.0 the unit is full for every incoming object")
	return nil
}
