// Quickstart: a single storage unit with temporal importance annotations.
//
// The example stores three objects with different lifetime annotations on a
// small unit, then watches the paper's reclamation rules play out as the
// unit comes under pressure: importance-one objects are untouchable,
// waning objects become preemptible as they age, and the storage importance
// density tells a content creator what the unit will accept.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"besteffs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const mb = 1 << 20

	var evictions []besteffs.Eviction
	unit, err := besteffs.NewUnit(100*mb, besteffs.TemporalImportance{},
		besteffs.WithUnitName("quickstart"),
		besteffs.WithEvictionHook(func(e besteffs.Eviction) {
			evictions = append(evictions, e)
		}),
	)
	if err != nil {
		return err
	}

	// Three annotations from the paper's Section 3: an archival object
	// that never expires, a two-step lecture-like object, and a cache
	// object that is freely replaceable from birth.
	archival := besteffs.Constant{Level: 1}
	lecture, err := besteffs.NewTwoStep(1, 15*besteffs.Day, 15*besteffs.Day)
	if err != nil {
		return err
	}
	cache := besteffs.Dirac{}

	now := time.Duration(0)
	for _, item := range []struct {
		id   besteffs.ObjectID
		size int64
		imp  besteffs.ImportanceFunc
	}{
		{"tax-records", 40 * mb, archival},
		{"os-lecture-12", 40 * mb, lecture},
		{"cached-trailer", 20 * mb, cache},
	} {
		o, err := besteffs.NewObject(item.id, item.size, now, item.imp)
		if err != nil {
			return err
		}
		d, err := unit.Put(o, now)
		if err != nil {
			return err
		}
		fmt.Printf("t=%4s  put %-15s admitted=%-5t density=%.3f\n",
			now, item.id, d.Admit, unit.DensityAt(now))
	}

	// The unit is byte-full. A new object must preempt: the cached
	// trailer (importance zero) goes first.
	now = 1 * besteffs.Day
	newLecture, err := besteffs.NewObject("os-lecture-13", 20*mb, now, lecture)
	if err != nil {
		return err
	}
	d, err := unit.Put(newLecture, now)
	if err != nil {
		return err
	}
	fmt.Printf("t=%4s  put %-15s admitted=%-5t highest preempted=%.2f\n",
		now, newLecture.ID, d.Admit, d.HighestPreempted)

	// Ten days in, lecture 12 is still on its importance-one plateau, so
	// an equal-importance arrival finds the unit full.
	now = 10 * besteffs.Day
	blocked, err := besteffs.NewObject("os-lecture-14", 40*mb, now, lecture)
	if err != nil {
		return err
	}
	if d, err = unit.Put(blocked, now); err != nil {
		return err
	}
	fmt.Printf("t=%4s  put %-15s admitted=%-5t reason=%v boundary=%.2f\n",
		now, blocked.ID, d.Admit, d.Reason, d.HighestPreempted)

	// At day 25 lecture 12 has waned to 1/3 importance and can be
	// preempted by the same arrival.
	now = 25 * besteffs.Day
	retry, err := besteffs.NewObject("os-lecture-14b", 40*mb, now, lecture)
	if err != nil {
		return err
	}
	if d, err = unit.Put(retry, now); err != nil {
		return err
	}
	fmt.Printf("t=%4s  put %-15s admitted=%-5t highest preempted=%.2f density=%.3f\n",
		now, retry.ID, d.Admit, d.HighestPreempted, unit.DensityAt(now))

	fmt.Println("\nevictions:")
	for _, e := range evictions {
		fmt.Printf("  %-15s lifetime=%-6s importance-at-eviction=%.2f preempted-by=%s\n",
			e.Object.ID, e.LifetimeAchieved, e.Importance, e.PreemptedBy)
	}
	fmt.Printf("\nfinal density %.3f; the tax records (importance one) are never preemptible\n",
		unit.DensityAt(now))
	return nil
}
