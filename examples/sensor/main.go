// Sensor storage: the paper's Section 6 extension scenario with
// rejuvenation triggers.
//
// "Storage in sensor scenarios might treat unprocessed data as important
// but retain processed data to accommodate for communications failure in
// propagating the results. ... These scenarios might require the ability to
// dynamically change the importance values based on triggers such as the
// receipt of an acknowledgment."
//
// A sensor node buffers raw readings at importance 1.0 (losing unprocessed
// data is catastrophic). Once a reading is processed, its raw form is
// *rejuvenated downward* to a short two-step lifetime -- kept only long
// enough to survive a communications failure -- and the derived summary is
// stored at moderate importance. When the base station acknowledges receipt
// of a summary, a second trigger demotes it to cache-like importance. The
// storage reclaims everything automatically, newest-critical data always
// wins, and no application ever issues a delete.
//
// Run with:
//
//	go run ./examples/sensor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"besteffs"
)

const kb = int64(1) << 10

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A tiny flash budget: 512 KB, like a mote's external flash.
	var evictions, rejections int
	unit, err := besteffs.NewUnit(512*kb, besteffs.TemporalImportance{},
		besteffs.WithEvictionHook(func(besteffs.Eviction) { evictions++ }),
		besteffs.WithRejectionHook(func(besteffs.Rejection) { rejections++ }),
	)
	if err != nil {
		return err
	}

	// Lifetimes for the three data states.
	rawCritical := besteffs.Constant{Level: 1} // unprocessed: never preemptible
	rawProcessed, err := besteffs.NewTwoStep(0.6, 2*time.Hour, 6*time.Hour)
	if err != nil {
		return err
	}
	summaryPending, err := besteffs.NewTwoStep(0.8, 12*time.Hour, 12*time.Hour)
	if err != nil {
		return err
	}
	summaryAcked, err := besteffs.NewTwoStep(0.2, 1*time.Hour, 3*time.Hour)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(9))
	now := time.Duration(0)

	fmt.Println("hour  unprocessed  processed  acked  density  evicted  rejected")
	for hour := 0; hour < 48; hour++ {
		now = time.Duration(hour) * time.Hour

		// Each hour the sensor captures a raw reading burst (~24 KB).
		rawID := besteffs.ObjectID(fmt.Sprintf("raw/%03d", hour))
		raw, err := besteffs.NewObject(rawID, 16*kb+int64(rng.Intn(int(16*kb))), now, rawCritical)
		if err != nil {
			return err
		}
		if _, err := unit.Put(raw, now); err != nil {
			return err
		}

		// The CPU processes the backlog with a two-hour lag: trigger 1 --
		// demote the raw reading, store the summary.
		if hour >= 2 {
			doneHour := hour - 2
			doneID := besteffs.ObjectID(fmt.Sprintf("raw/%03d", doneHour))
			if _, err := unit.Rejuvenate(doneID, rawProcessed, now); err == nil {
				sumID := besteffs.ObjectID(fmt.Sprintf("sum/%03d", doneHour))
				summary, err := besteffs.NewObject(sumID, 2*kb, now, summaryPending)
				if err != nil {
					return err
				}
				if _, err := unit.Put(summary, now); err != nil {
					return err
				}
			}
		}

		// The uplink is flaky: acknowledgments arrive for a random older
		// summary 60% of the time. Trigger 2 -- demote acked summaries.
		if hour >= 4 && rng.Float64() < 0.6 {
			ackID := besteffs.ObjectID(fmt.Sprintf("sum/%03d", rng.Intn(hour-3)))
			// Ignore not-found: the summary may already be reclaimed.
			_, _ = unit.Rejuvenate(ackID, summaryAcked, now)
		}

		if hour%6 == 5 {
			var rawPending, rawDone, acked int
			for _, o := range unit.Residents() {
				isRaw := o.ID[:3] == "raw"
				switch {
				case isRaw && o.Version == 1:
					rawPending++
				case isRaw:
					rawDone++
				case o.Version > 1:
					acked++
				}
			}
			fmt.Printf("%4d  %11d  %9d  %5d  %7.3f  %7d  %8d\n",
				hour, rawPending, rawDone, acked,
				unit.DensityAt(now), evictions, rejections)
		}
	}

	fmt.Printf("\nafter 48 hours on a 512 KB flash: %d evictions, %d rejections, %d residents\n",
		evictions, rejections, unit.Len())
	fmt.Println("unprocessed readings were never reclaimed (importance 1.0);")
	fmt.Println("processed data and acknowledged summaries drained automatically")
	return nil
}
