// Netstore: a live Besteffs deployment over TCP, in one process.
//
// The example starts three storage nodes on loopback listeners and joins
// them into one cluster with the gossip membership protocol: every node
// runs a MemberAgent that advertises its address, importance boundary and
// free capacity to its peers. The client then discovers the whole cluster
// from a single seed address (DialClusterSeed) -- it never sees the other
// two addresses -- and stores objects with the paper's placement algorithm
// running over real sockets: probe sampled nodes for the highest
// importance a put would preempt, store on the node with the lowest
// boundary. It then demonstrates preemption across the wire and reads the
// density feedback from every node.
//
// Run with:
//
//	go run ./examples/netstore
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"besteffs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodeCapacity = 10 << 20 // 10 MB per node

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Start three nodes. Each runs a membership agent next to its storage
	// server; nodes 1 and 2 join through node 0's address, then gossip
	// spreads the full table everywhere.
	var seed string
	for i := 0; i < 3; i++ {
		srv, err := besteffs.NewServer(besteffs.EngineConfig{Capacity: nodeCapacity, Policy: besteffs.TemporalImportance{}})
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr := l.Addr().String()
		var seeds []string
		if seed == "" {
			seed = addr
		} else {
			seeds = []string{seed}
		}
		agent, err := besteffs.NewMemberAgent(besteffs.MemberConfig{
			Addr: addr,
			Self: func() (float64, int64, float64) {
				sm := srv.Unit().SampleAt(srv.Now())
				return sm.Boundary, srv.Unit().Capacity() - srv.Unit().Used(), sm.Density
			},
			Seeds:    seeds,
			Interval: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		srv.SetMembership(agent)
		go agent.Run(ctx)
		go func() {
			if err := srv.Serve(ctx, l); err != nil {
				log.Printf("node: %v", err)
			}
		}()
		fmt.Printf("node %d listening on %s (%d MB, temporal-importance policy)\n",
			i, addr, nodeCapacity>>20)
	}

	// Give the heartbeats a few rounds to spread all three advertisements,
	// then discover the cluster from the single seed address.
	time.Sleep(500 * time.Millisecond)
	cc, err := besteffs.DialClusterSeed(ctx, seed, 2*time.Second, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	defer cc.Close()
	fmt.Printf("\ndiscovered the cluster from seed %s\n", seed)

	// Store a batch of annotated objects across the cluster.
	lifetime, err := besteffs.NewTwoStep(0.6, time.Hour, time.Hour)
	if err != nil {
		return err
	}
	fmt.Println("\nstoring 15 x 2MB objects at importance 0.6 (fills all three nodes):")
	batch := make([]besteffs.PutRequest, 15)
	for i := range batch {
		batch[i] = besteffs.PutRequest{
			ID:         besteffs.ObjectID(fmt.Sprintf("video/%02d", i)),
			Owner:      "camera-1",
			Class:      besteffs.ClassUniversity,
			Importance: lifetime,
			Payload:    make([]byte, 2<<20),
		}
	}
	// One PutBatch call spreads the batch across the cluster by probe
	// boundary and ships each node's chunk as a single BATCH frame.
	outcomes, err := cc.PutBatch(ctx, batch)
	if err != nil {
		return err
	}
	for i, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("video/%02d: %w", i, o.Err)
		}
		fmt.Printf("  video/%02d -> node %d (boundary %.2f, %d eviction(s))\n",
			i, o.Node, o.Result.Boundary, len(o.Result.Evicted))
	}

	// The cluster is nearly full of 0.6-importance objects. A critical
	// object preempts; a low-importance one is turned away.
	fmt.Println("\ncritical object at importance 1.0:")
	p, err := cc.PutCtx(ctx, besteffs.PutRequest{
		ID:         "critical/backup",
		Importance: besteffs.Constant{Level: 1},
		Payload:    make([]byte, 2<<20),
	})
	if err != nil {
		return err
	}
	fmt.Printf("  stored on node %d, preempting %v\n", p.Node, p.Evicted)

	fmt.Println("\nunimportant object at importance 0.2:")
	if _, err := cc.PutCtx(ctx, besteffs.PutRequest{
		ID:         "junk/cache",
		Importance: besteffs.Constant{Level: 0.2},
		Payload:    make([]byte, 2<<20),
	}); err != nil {
		fmt.Printf("  rejected as expected: %v\n", err)
	} else {
		fmt.Println("  unexpectedly admitted (cluster still had free space)")
	}

	// Density feedback per node.
	avg, err := cc.AverageDensityCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\ncluster average storage importance density: %.3f\n", avg)

	// Read one object back and show its server-evaluated importance.
	got, err := cc.GetCtx(ctx, "critical/backup")
	if err != nil {
		return err
	}
	fmt.Printf("critical/backup: %d bytes, age %s, current importance %.2f\n",
		len(got.Payload), got.Age.Round(time.Millisecond), got.CurrentImportance)
	return nil
}
