// Multi-user fairness: the paper's Section 1 warning, demonstrated and
// fixed.
//
// "On a multi-user system, the system should restrict the importance
// functions for fairness, lest every user request infinite lifetime,
// essentially reverting to the traditional persistent until deleted model."
//
// Two users share one disk. "hoarder" annotates everything at importance
// 1.0 forever; "scientist" uses honest two-step lifetimes. Under the plain
// temporal-importance policy the hoarder freezes the scientist out; under
// the FairShare policy (per-owner capacity quotas layered over the same
// preemption rules) each user's data competes only within their share.
//
// Run with:
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"besteffs"
)

const mb = int64(1) << 20

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// user produces a deterministic arrival stream.
type user struct {
	name string
	imp  besteffs.ImportanceFunc
	size int64
}

func run() error {
	honest, err := besteffs.NewTwoStep(1, 7*besteffs.Day, 7*besteffs.Day)
	if err != nil {
		return err
	}
	users := []user{
		{name: "hoarder", imp: besteffs.Constant{Level: 1}, size: 8 * mb},
		{name: "scientist", imp: honest, size: 8 * mb},
	}

	for _, setup := range []struct {
		label  string
		policy besteffs.Policy
	}{
		{"plain temporal-importance", besteffs.TemporalImportance{}},
		{"fair-share (50% per owner)", besteffs.FairShare{MaxFraction: 0.5}},
	} {
		unit, err := besteffs.NewUnit(200*mb, setup.policy)
		if err != nil {
			return err
		}
		held := map[string]int64{}
		rejected := map[string]int{}
		rng := rand.New(rand.NewSource(1))

		// Interleaved arrivals over 60 days; both users keep producing.
		for day := 0; day < 60; day++ {
			now := time.Duration(day) * besteffs.Day
			for _, u := range users {
				id := besteffs.ObjectID(fmt.Sprintf("%s/%s/d%03d-%d", setup.label, u.name, day, rng.Intn(1000)))
				o, err := besteffs.NewObject(id, u.size, now, u.imp)
				if err != nil {
					return err
				}
				o.Owner = u.name
				d, err := unit.Put(o, now)
				if err != nil {
					return err
				}
				if !d.Admit {
					rejected[u.name]++
				}
			}
		}
		for _, o := range unit.Residents() {
			held[o.Owner] += o.Size
		}

		fmt.Printf("%s:\n", setup.label)
		for _, u := range users {
			fmt.Printf("  %-9s holds %3d MB, %2d arrivals rejected\n",
				u.name, held[u.name]/mb, rejected[u.name])
		}
		fmt.Printf("  density %.3f\n\n", unit.DensityAt(60*besteffs.Day))
	}
	fmt.Println("the quota confines the hoarder to their share; the scientist's honest")
	fmt.Println("annotations keep cycling inside the other half")
	return nil
}
