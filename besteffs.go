// Package besteffs is the public API of the Besteffs reproduction: a
// storage system that reclaims space automatically using temporal
// importance annotations, after "Automated Storage Reclamation Using
// Temporal Importance Annotations" (Chandra, Gehani, Yu; ICDCS 2007).
//
// Content creators attach a monotonically decreasing importance function
// L(t) in [0, 1] to every object. Under storage pressure, an arriving
// object preempts residents of strictly lower current importance;
// importance-one residents are never preemptible and importance-zero
// residents are freely replaceable. The storage importance density -- each
// stored byte weighted by its current importance, over capacity --
// quantifies the importance level at which a store is full and is the
// feedback signal creators use to pick annotations.
//
// The package re-exports the stable surface of the internal packages:
//
//   - importance functions (TwoStep, Constant, Dirac, Linear, Exponential,
//     Piecewise) with validation, codecs and a CLI spec syntax;
//   - the storage-unit engine (Unit) with the temporal-importance,
//     Palimpsest-FIFO and traditional policies;
//   - the simulated distributed cluster (Cluster) running the paper's
//     sample-and-probe placement over a p2p overlay;
//   - the live TCP node (Server) and client (Client, ClusterClient)
//     speaking the Besteffs wire protocol.
//
// See examples/ for runnable walk-throughs and cmd/paperbench for the
// reproduction of every figure and table in the paper's evaluation.
package besteffs

import (
	"context"
	"math/rand"
	"time"

	"besteffs/internal/blob"
	"besteffs/internal/client"
	"besteffs/internal/cluster"
	"besteffs/internal/importance"
	"besteffs/internal/member"
	"besteffs/internal/object"
	"besteffs/internal/policy"
	"besteffs/internal/server"
	"besteffs/internal/store"
)

// Day is one simulated day, the natural unit of the paper's lifetimes.
const Day = importance.Day

// Importance functions (see the importance package for details).
type (
	// ImportanceFunc is a monotonically decreasing temporal importance
	// function L(t) with values in [0, 1].
	ImportanceFunc = importance.Function
	// TwoStep is the paper's two-piece importance function: a plateau
	// for Persist, then a linear wane to zero over Wane.
	TwoStep = importance.TwoStep
	// Constant is traditional no-expiration storage at a fixed level.
	Constant = importance.Constant
	// Dirac is cache-like degradation: importance zero from birth.
	Dirac = importance.Dirac
	// Linear decays linearly from Start to zero at Expire.
	Linear = importance.Linear
	// Exponential decays with a half-life, truncated at Expire.
	Exponential = importance.Exponential
	// Piecewise is a general monotone piecewise-linear function.
	Piecewise = importance.Piecewise
)

// NewTwoStep validates and builds a two-step importance function.
func NewTwoStep(plateau float64, persist, wane time.Duration) (TwoStep, error) {
	return importance.NewTwoStep(plateau, persist, wane)
}

// ParseImportance parses the spec syntax used by the CLI tools, e.g.
// "twostep:p=1,persist=15d,wane=15d".
func ParseImportance(spec string) (ImportanceFunc, error) {
	return importance.ParseSpec(spec)
}

// ValidateImportance checks range and monotonicity of a function.
func ValidateImportance(f ImportanceFunc) error { return importance.Validate(f) }

// MinImportance is the pointwise minimum of functions (monotone-preserving).
func MinImportance(fns ...ImportanceFunc) (importance.Min, error) {
	return importance.NewMin(fns...)
}

// ProductImportance is the pointwise product of functions.
func ProductImportance(fns ...ImportanceFunc) (importance.Product, error) {
	return importance.NewProduct(fns...)
}

// CapImportance clamps a function to at most level (e.g. a student stream
// derived from a university lifetime at half the ceiling).
func CapImportance(f ImportanceFunc, level float64) (importance.Min, error) {
	return importance.Cap(f, level)
}

// Object model.
type (
	// Object is a stored blob plus its reclamation metadata.
	Object = object.Object
	// ObjectID names an object.
	ObjectID = object.ID
	// Class groups objects by creator type.
	Class = object.Class
)

// Object classes.
const (
	ClassGeneric    = object.ClassGeneric
	ClassUniversity = object.ClassUniversity
	ClassStudent    = object.ClassStudent
)

// NewObject validates and builds an object.
func NewObject(id ObjectID, size int64, arrival time.Duration, imp ImportanceFunc) (*Object, error) {
	return object.New(id, size, arrival, imp)
}

// Policies.
type (
	// Policy plans admissions and preemptions for a storage unit.
	Policy = policy.Policy
	// TemporalImportance is the paper's reclamation policy.
	TemporalImportance = policy.TemporalImportance
	// FIFO is the Palimpsest-like baseline.
	FIFO = policy.FIFO
	// Traditional never reclaims and rejects when full.
	Traditional = policy.Traditional
	// FairShare layers per-owner capacity quotas over the temporal
	// policy (the paper's Section 1 fairness requirement).
	FairShare = policy.FairShare
	// Decision is a policy's admission plan.
	Decision = policy.Decision
)

// Storage unit.
type (
	// Unit is one policy-governed storage unit.
	Unit = store.Unit
	// UnitOption configures a Unit.
	UnitOption = store.Option
	// Eviction records one reclaimed object.
	Eviction = store.Eviction
	// Rejection records one object the unit was full for.
	Rejection = store.Rejection
)

// NewUnit builds a storage unit of the given byte capacity.
func NewUnit(capacity int64, pol Policy, opts ...UnitOption) (*Unit, error) {
	return store.New(capacity, pol, opts...)
}

// Unit options.
var (
	// WithUnitName names the unit in reports.
	WithUnitName = store.WithName
	// WithEvictionHook observes every eviction.
	WithEvictionHook = store.WithEvictionHook
	// WithRejectionHook observes every rejection.
	WithRejectionHook = store.WithRejectionHook
	// WithAdmissionHook observes every admission.
	WithAdmissionHook = store.WithAdmissionHook
)

// Distributed simulation.
type (
	// Cluster is a simulated Besteffs deployment running the Section 5.3
	// placement algorithm over a p2p overlay.
	Cluster = cluster.Cluster
	// ClusterOption configures a Cluster.
	ClusterOption = cluster.Option
	// Placement reports where an admitted object landed.
	Placement = cluster.Placement
)

// NewCluster builds a simulated cluster of n units joined by a random
// overlay of the given degree.
func NewCluster(n int, capacity int64, pol Policy, degree int, rng *rand.Rand, opts ...ClusterOption) (*Cluster, error) {
	return cluster.New(n, capacity, pol, degree, rng, opts...)
}

// Cluster options.
var (
	// WithSampleSize sets x, the units sampled per placement round.
	WithSampleSize = cluster.WithSampleSize
	// WithMaxTries sets m, the maximum placement rounds.
	WithMaxTries = cluster.WithMaxTries
	// WithWalkLength sets the random-walk length per sample.
	WithWalkLength = cluster.WithWalkLength
)

// Live networking.
type (
	// Server is a live Besteffs storage node over TCP.
	Server = server.Server
	// ServerOption configures a Server.
	ServerOption = server.Option
	// EngineConfig sizes a Server's storage engine: total capacity, the
	// admission policy, and the in-process shard count splitting both
	// (zero Shards means one, the unsharded layout).
	EngineConfig = server.EngineConfig
	// StorageEngine is a Server's sharded storage engine: it routes object
	// IDs over the shards and presents the merged node-level view
	// (density, importance boundary, residents).
	StorageEngine = store.Engine
	// Client is a connection to one node.
	Client = client.Client
	// ClusterClient places objects across live nodes with the paper's
	// placement algorithm.
	ClusterClient = client.ClusterClient
	// PutRequest describes one object to store on a node.
	PutRequest = client.PutRequest
)

// NewServer builds a live storage node from an engine configuration:
//
//	srv, err := besteffs.NewServer(besteffs.EngineConfig{
//		Capacity: 1 << 30,
//		Policy:   besteffs.TemporalImportance{},
//		Shards:   4, // optional: partition over 4 in-process shards
//	})
func NewServer(cfg EngineConfig, opts ...ServerOption) (*Server, error) {
	return server.New(cfg, opts...)
}

// NewUnshardedServer builds a single-shard live storage node.
//
// Deprecated: use NewServer with an EngineConfig; this shim keeps the old
// positional construction compiling for one release.
func NewUnshardedServer(capacity int64, pol Policy, opts ...ServerOption) (*Server, error) {
	return server.New(server.EngineConfig{Capacity: capacity, Policy: pol}, opts...)
}

// WithShards overrides the engine configuration's shard count, for callers
// assembling option lists (equivalent to setting EngineConfig.Shards).
var WithShards = server.WithShards

// BlobStore holds payload bytes for a live node.
type BlobStore = blob.Store

// NewFileBlobStore opens a crash-safe on-disk payload store rooted at dir.
func NewFileBlobStore(dir string) (*blob.FileStore, error) {
	return blob.NewFileStore(dir)
}

// WithBlobStore points a live node's payloads at a BlobStore (for example
// a file store), instead of the default in-memory store.
var WithBlobStore = server.WithBlobStore

// Dial connects to a live node.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return client.Dial(addr, timeout)
}

// DialCluster connects to many nodes and returns the placement client.
func DialCluster(addrs []string, timeout time.Duration, rng *rand.Rand) (*ClusterClient, error) {
	return client.DialCluster(addrs, timeout, rng)
}

// DialClusterSeed connects to one seed node, asks it for the cluster's
// live membership, and returns a placement client connected to every
// alive member. Requires the nodes to run the membership protocol (a
// MemberAgent attached via Server.SetMembership, or besteffsd -join).
func DialClusterSeed(ctx context.Context, seed string, timeout time.Duration, rng *rand.Rand) (*ClusterClient, error) {
	return client.DialClusterSeed(ctx, seed, timeout, rng)
}

// Cluster membership over the real wire.
type (
	// MemberAgent runs the gossip membership protocol for one live node:
	// it advertises the node's address, importance boundary, free bytes
	// and density to its peers, detects dead peers by advertisement
	// staleness, and carries the push-sum density average over TCP.
	// Attach it to the node with Server.SetMembership.
	MemberAgent = member.Agent
	// MemberConfig configures a MemberAgent.
	MemberConfig = member.Config
)

// NewMemberAgent builds a membership agent; call its Run to start
// gossiping and Server.SetMembership to let the node answer GOSSIP and
// MEMBERS requests.
func NewMemberAgent(cfg MemberConfig) (*MemberAgent, error) {
	return member.NewAgent(cfg)
}
