package besteffs_test

import (
	"fmt"
	"log"
	"time"

	"besteffs"
)

// Example shows the core reclamation loop: a small unit under pressure
// admits an important arrival by preempting the least important resident.
func Example() {
	unit, err := besteffs.NewUnit(100, besteffs.TemporalImportance{})
	if err != nil {
		log.Fatal(err)
	}

	cache, err := besteffs.NewObject("cache/trailer", 60, 0, besteffs.Dirac{})
	if err != nil {
		log.Fatal(err)
	}
	archive, err := besteffs.NewObject("tax/2026", 40, 0, besteffs.Constant{Level: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range []*besteffs.Object{cache, archive} {
		if _, err := unit.Put(o, 0); err != nil {
			log.Fatal(err)
		}
	}

	lecture, err := besteffs.NewObject("lectures/os-12", 50, 0,
		besteffs.TwoStep{Plateau: 1, Persist: 15 * besteffs.Day, Wane: 15 * besteffs.Day})
	if err != nil {
		log.Fatal(err)
	}
	d, err := unit.Put(lecture, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted=%t victims=%d first=%s\n", d.Admit, len(d.Victims), d.Victims[0].ID)
	fmt.Printf("density=%.2f\n", unit.DensityAt(0))
	// Output:
	// admitted=true victims=1 first=cache/trailer
	// density=0.90
}

// ExampleTwoStep evaluates the paper's two-piece importance function over
// an object's life.
func ExampleTwoStep() {
	f, err := besteffs.NewTwoStep(1.0, 15*besteffs.Day, 15*besteffs.Day)
	if err != nil {
		log.Fatal(err)
	}
	for _, age := range []time.Duration{0, 15 * besteffs.Day, 22*besteffs.Day + 12*time.Hour, 30 * besteffs.Day} {
		fmt.Printf("day %4.1f: L = %.2f\n", age.Hours()/24, f.At(age))
	}
	// Output:
	// day  0.0: L = 1.00
	// day 15.0: L = 1.00
	// day 22.5: L = 0.50
	// day 30.0: L = 0.00
}

// ExampleParseImportance parses the CLI spec syntax.
func ExampleParseImportance() {
	f, err := besteffs.ParseImportance("twostep:p=0.5,persist=10d,wane=20d")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L(0) = %.2f, L(20d) = %.2f\n", f.At(0), f.At(20*besteffs.Day))
	// Output:
	// L(0) = 0.50, L(20d) = 0.25
}

// ExampleUnit_Probe shows the density-feedback loop: a creator probes the
// unit before choosing an annotation.
func ExampleUnit_Probe() {
	unit, err := besteffs.NewUnit(100, besteffs.TemporalImportance{})
	if err != nil {
		log.Fatal(err)
	}
	resident, err := besteffs.NewObject("r", 100, 0, besteffs.Constant{Level: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := unit.Put(resident, 0); err != nil {
		log.Fatal(err)
	}
	for _, level := range []float64{0.5, 0.7} {
		probe, err := besteffs.NewObject("probe", 50, 0, besteffs.Constant{Level: level})
		if err != nil {
			log.Fatal(err)
		}
		d := unit.Probe(probe, 0)
		fmt.Printf("importance %.1f: admissible=%t (boundary %.1f)\n",
			level, d.Admit, d.HighestPreempted)
	}
	// Output:
	// importance 0.5: admissible=false (boundary 0.6)
	// importance 0.7: admissible=true (boundary 0.6)
}
