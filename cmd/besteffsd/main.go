// Command besteffsd runs one live Besteffs storage node: a TCP server that
// stores objects annotated with temporal importance functions and reclaims
// space with the paper's preemption policy. It is the building block of a
// fully distributed deployment -- start one daemon per machine and point
// besteffsctl (or client.ClusterClient) at the set.
//
// Usage:
//
//	besteffsd [-addr HOST:PORT] [-capacity BYTES] [-shards N] [-policy NAME] [-data DIR]
//	          [-sweep DUR] [-status HOST:PORT] [-pprof] [-sample DUR]
//	          [-sample-window N] [-max-conns N] [-max-batch N] [-req-timeout DUR]
//	          [-drain DUR] [-join ADDRS] [-replicas N] [-repl-threshold F]
//	          [-repair-interval DUR] [-gossip-interval DUR] [-advertise HOST:PORT]
//	          [-slow-threshold DUR] [-tls] [-tls-dir DIR] [-tls-peers IDS]
//	          [-config-version N]
//
// Cluster mode starts with -join (gossip with existing members at ADDRS,
// comma-separated) or -replicas. Every clustered node runs the membership
// heartbeat -- advertising its address, importance boundary and free
// capacity -- and answers MEMBERS, so clients can discover the whole
// cluster from any one node. With -replicas N > 1, an admitted object whose
// initial importance reaches -repl-threshold is pushed to N-1 peers before
// the put is acknowledged, and an anti-entropy loop re-replicates
// under-replicated or divergent objects every -repair-interval. Use
// -advertise when the listen address is not reachable by peers (e.g.
// -addr :7459 behind NAT).
//
// With -tls, every connection -- gossip, replication, repair and clients --
// runs over TLS with mutual authentication. The node mints a self-signed
// certificate under -tls-dir (default DIR/tls under -data) at first boot and
// logs its device ID, the hash of the certificate's public key. -tls-peers
// pins the device IDs admitted to this node (comma-separated; empty admits
// any authenticated device). Cleartext remains the explicit default for
// closed networks; a cleartext client dialing a TLS node fails during the
// handshake, before any request is read.
//
// Clustered nodes also gossip a versioned cluster config (replication
// factor, threshold, loop intervals). A bootstrap node (no -join) publishes
// its flags as config version 1 (override with -config-version); joining
// nodes start at version 0 and adopt the cluster's config, and a node whose
// equal-version config conflicts is rejected at gossip time with a
// config-mismatch error, recorded on both sides' flight recorders.
//
// With -status, the address serves the JSON status snapshot at /, the
// Prometheus text exposition at /metrics, and -- with -pprof -- the standard
// net/http/pprof profiling endpoints under /debug/pprof/. The -sample
// interval records the node's density trajectory into a ring of
// -sample-window samples, visible in status JSON, /metrics and
// "besteffsctl density".
//
// With -shards N > 1, the capacity is partitioned over N in-process shards,
// each with its own lock and WAL stream, so concurrent puts on a multi-core
// box contend on N locks instead of one. Shard routing hashes the object ID,
// so the same key lands on the same shard across restarts. Checkpoints cut
// all shards at one instant, and recovery rebuilds every shard to that cut.
//
// With -data, payload bytes are kept in crash-safe files under DIR/blobs and
// a segmented metadata write-ahead log grows under DIR/wal (rotating at
// -wal-segment bytes; with -shards N > 1, under DIR/shard-NNN/wal per
// shard -- an existing unsharded DIR/wal is migrated on first sharded boot). On startup the node loads its newest checkpoint,
// replays only the segments written after it, truncates any torn tail a
// crash left behind, and reconciles metadata against the payload files. A
// pre-WAL DIR/journal.log is migrated automatically on first boot. The
// -checkpoint interval bounds recovery time and WAL disk usage; a final
// checkpoint is also written at clean shutdown. The -scrub-interval loop
// re-verifies payload CRCs in the background and quarantines corrupt
// objects instead of ever serving them. If startup fails with a corruption
// error, inspect the damage with "besteffsctl fsck DIR".
//
// Policies: temporal (default), fifo, traditional, fair-share (per-owner
// quotas; tune with -share).
//
// Every request runs under a distributed trace (see besteffsctl trace), and
// a bounded flight recorder keeps the node's recent decisions -- admissions,
// evictions, boundary moves, replica traffic, membership transitions.
// SIGQUIT dumps the recorder to stderr without stopping the node; with
// -slow-threshold, any request at least that slow logs its span tree at
// WARN.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
// lets in-flight requests finish for up to -drain, then syncs and closes the
// journal so the shutdown never tears the record a client was just
// acknowledged for.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"besteffs/internal/blob"
	"besteffs/internal/client"
	"besteffs/internal/journal"
	"besteffs/internal/member"
	"besteffs/internal/policy"
	"besteffs/internal/repair"
	"besteffs/internal/secure"
	"besteffs/internal/server"
	"besteffs/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "besteffsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("besteffsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7459", "listen address")
	capacity := fs.Int64("capacity", 1<<30, "storage capacity in bytes")
	shards := fs.Int("shards", 1, "in-process shards splitting the capacity (1 = unsharded)")
	policyName := fs.String("policy", "temporal", "admission policy: temporal, fifo, traditional or fair-share")
	share := fs.Float64("share", 0.5, "per-owner capacity fraction for -policy fair-share")
	dataDir := fs.String("data", "", "directory for on-disk payloads (default: in-memory)")
	sweep := fs.Duration("sweep", 0, "reclaim expired objects every interval (0 disables)")
	statusAddr := fs.String("status", "", "serve status JSON and /metrics on this address (optional)")
	pprof := fs.Bool("pprof", false, "expose /debug/pprof/ on the -status address")
	sample := fs.Duration("sample", 10*time.Second, "record a density sample every interval (0 disables)")
	sampleWindow := fs.Int("sample-window", 360, "density samples kept in the ring")
	maxConns := fs.Int("max-conns", 0, "cap on concurrent client connections (0 = unlimited)")
	reqTimeout := fs.Duration("req-timeout", time.Minute, "per-connection idle/write deadline (0 disables)")
	drain := fs.Duration("drain", 5*time.Second, "grace period for in-flight requests at shutdown (0 = close immediately)")
	checkpoint := fs.Duration("checkpoint", 10*time.Minute, "checkpoint live state and truncate the WAL every interval (0 disables; needs -data)")
	walSegment := fs.Int64("wal-segment", journal.DefaultSegmentBytes, "WAL segment rotation size in bytes")
	scrubInterval := fs.Duration("scrub-interval", 0, "verify payload CRCs and quarantine corrupt objects every interval (0 disables)")
	maxBatch := fs.Int("max-batch", 0, "cap on sub-requests per BATCH frame and per coalesced put group (0 = protocol limit)")
	join := fs.String("join", "", "comma-separated addresses of existing cluster members to gossip with (enables cluster mode)")
	replicas := fs.Int("replicas", 0, "replication factor for objects above -repl-threshold (0 disables; >1 enables the repair loop)")
	replThreshold := fs.Float64("repl-threshold", 0.5, "initial importance at or above which objects replicate")
	repairInterval := fs.Duration("repair-interval", 5*time.Second, "anti-entropy repair pass period")
	gossipInterval := fs.Duration("gossip-interval", 500*time.Millisecond, "membership heartbeat period")
	advertise := fs.String("advertise", "", "address peers reach this node at (default: the listen address)")
	slowThreshold := fs.Duration("slow-threshold", 0, "log any request taking at least this long at WARN, with its span tree (0 disables)")
	tlsOn := fs.Bool("tls", false, "serve and dial over TLS with mutual authentication")
	tlsDir := fs.String("tls-dir", "", "directory for the node certificate and key (default: DIR/tls under -data)")
	tlsPeers := fs.String("tls-peers", "", "comma-separated device IDs admitted to this node (empty: any authenticated device)")
	configVersion := fs.Uint64("config-version", 0, "cluster config version this node publishes (0: 1 when bootstrapping, adopt when joining)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slowThreshold < 0 {
		return fmt.Errorf("-slow-threshold %v is negative", *slowThreshold)
	}
	if *walSegment <= 0 {
		return fmt.Errorf("-wal-segment %d is not positive", *walSegment)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d is not positive", *shards)
	}
	if *maxConns < 0 {
		return fmt.Errorf("-max-conns %d is negative", *maxConns)
	}
	if *maxBatch < 0 {
		return fmt.Errorf("-max-batch %d is negative", *maxBatch)
	}
	if *pprof && *statusAddr == "" {
		return errors.New("-pprof needs -status (profiling shares the status listener)")
	}
	if *sample > 0 && *sampleWindow < 1 {
		return fmt.Errorf("-sample-window %d is not positive", *sampleWindow)
	}
	if *replicas < 0 {
		return fmt.Errorf("-replicas %d is negative", *replicas)
	}
	if *replThreshold < 0 || *replThreshold > 1 {
		return fmt.Errorf("-repl-threshold %v outside [0, 1]", *replThreshold)
	}
	if !*tlsOn && (*tlsDir != "" || *tlsPeers != "") {
		return errors.New("-tls-dir and -tls-peers need -tls")
	}
	if *tlsOn && *tlsDir == "" && *dataDir == "" {
		return errors.New("-tls needs -tls-dir (or -data to default under)")
	}

	pol, err := policyByName(*policyName, *share)
	if err != nil {
		return err
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	opts := []server.Option{server.WithLogger(log)}
	if *sweep > 0 {
		opts = append(opts, server.WithMaintenance(*sweep))
	}
	if *maxConns > 0 {
		opts = append(opts, server.WithConnLimit(*maxConns))
	}
	if *maxBatch > 0 {
		opts = append(opts, server.WithMaxBatchSubs(*maxBatch))
	}
	if *reqTimeout > 0 {
		opts = append(opts,
			server.WithIdleTimeout(*reqTimeout),
			server.WithWriteTimeout(*reqTimeout))
	}
	if *drain > 0 {
		opts = append(opts, server.WithDrainTimeout(*drain))
	}
	if *sample > 0 {
		opts = append(opts, server.WithDensitySampling(*sample, *sampleWindow))
	}
	if *scrubInterval > 0 {
		opts = append(opts, server.WithScrub(*scrubInterval))
	}
	if *slowThreshold > 0 {
		opts = append(opts, server.WithSlowThreshold(*slowThreshold))
	}
	// Spans record the advertised address so cross-node trace trees name
	// nodes the way peers and operators reach them.
	nodeAddr := *advertise
	if nodeAddr == "" {
		nodeAddr = *addr
	}
	opts = append(opts, server.WithNodeAddr(nodeAddr))
	var wals []*journal.WAL
	if *dataDir != "" {
		files, err := blob.NewFileStore(filepath.Join(*dataDir, "blobs"))
		if err != nil {
			return err
		}
		wals, err = server.OpenShardWALs(*dataDir, *shards, journal.WithSegmentBytes(*walSegment))
		if err != nil {
			if errors.Is(err, journal.ErrCorrupt) {
				return fmt.Errorf("%w\nrun \"besteffsctl fsck %s\" to inspect the damage", err, *dataDir)
			}
			return err
		}
		// Safety net for early-exit paths; the normal path closes
		// explicitly after Serve drains (Close is idempotent).
		defer func() {
			for _, w := range wals {
				if err := w.Close(); err != nil {
					log.Error("close wal", "err", err)
				}
			}
		}()
		opts = append(opts, server.WithBlobStore(files), server.WithWALs(wals))
		if *checkpoint > 0 {
			opts = append(opts, server.WithCheckpointInterval(*checkpoint))
		}
		log.Info("persistent node", "blobs", files.Root(),
			"wal", server.ShardWALDir(*dataDir, *shards, 0), "shards", *shards)
	}
	srv, err := server.New(server.EngineConfig{
		Capacity: *capacity, Policy: pol, Shards: *shards,
	}, opts...)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		stats, err := srv.RestoreDir(*dataDir)
		if err != nil {
			if errors.Is(err, journal.ErrCorrupt) {
				return fmt.Errorf("%w\nrun \"besteffsctl fsck %s\" to inspect the damage", err, *dataDir)
			}
			return err
		}
		log.Info("restored",
			"records", stats.Records, "residents", stats.Residents,
			"resume", stats.Resume, "checkpoint_seq", stats.CheckpointSeq,
			"checkpoint_objects", stats.CheckpointObjects,
			"segments_replayed", stats.SegmentsReplayed,
			"torn_tail_bytes", stats.TornTailBytes,
			"legacy_migrated", stats.LegacyMigrated,
			"dropped_no_payload", stats.DroppedNoPayload,
			"dropped_orphan_blobs", stats.DroppedOrphanBlobs)
	}
	// Transport security: one certificate identity shared by the accept
	// side and every outbound path (gossip, repair pulls, replica pushes).
	var (
		tlsServerCfg *tls.Config
		tlsClientCfg *tls.Config
		device       secure.DeviceID
	)
	if *tlsOn {
		dir := *tlsDir
		if dir == "" {
			dir = filepath.Join(*dataDir, "tls")
		}
		cert, err := secure.LoadOrCreate(dir)
		if err != nil {
			return err
		}
		device, err = secure.IDFromTLSCert(cert)
		if err != nil {
			return err
		}
		var allow *secure.Allowlist
		if *tlsPeers != "" {
			var ids []secure.DeviceID
			for _, id := range strings.Split(*tlsPeers, ",") {
				if id = strings.TrimSpace(id); id != "" {
					ids = append(ids, secure.DeviceID(id))
				}
			}
			allow = secure.NewAllowlist(ids...)
		}
		tlsServerCfg = secure.ServerConfig(cert, allow)
		tlsClientCfg = secure.ClientConfig(cert, allow)
		log.Info("tls enabled", "device", device.Short(), "dir", dir,
			"pinned_peers", allow.Len())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	if tlsServerCfg != nil {
		l = tls.NewListener(l, tlsServerCfg)
	}
	log.Info("besteffsd listening",
		"addr", l.Addr().String(), "capacity", *capacity, "policy", pol.Name(),
		"tls", *tlsOn)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder to stderr and keeps serving: the
	// black box is most wanted exactly when the node is misbehaving, so the
	// dump must not require stopping it.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			fmt.Fprintf(os.Stderr, "=== flight recorder (SIGQUIT, %d events) ===\n",
				srv.Events().Len())
			srv.Events().Dump(os.Stderr)
			fmt.Fprintln(os.Stderr, "=== end flight recorder ===")
		}
	}()

	// Cluster mode: a membership agent gossiping this node's advertisement,
	// plus -- with -replicas > 1 -- the repair manager. Both loops run on
	// their own context so shutdown can stop them before the WAL closes:
	// a repair pull mid-flight must not append to a closed journal.
	var (
		mgr           *repair.Manager
		clusterWG     sync.WaitGroup
		clusterCancel context.CancelFunc
	)
	if *join != "" || *replicas > 0 {
		selfAddr := *advertise
		if selfAddr == "" {
			selfAddr = l.Addr().String()
		}
		var seeds []string
		for _, seed := range strings.Split(*join, ",") {
			seed = strings.TrimSpace(seed)
			if seed != "" && seed != selfAddr {
				seeds = append(seeds, seed)
			}
		}
		// A bootstrap node (no seeds) publishes its flags as the cluster
		// config; joiners start at version 0 and adopt whatever the
		// cluster gossips back. The policy fields always reflect this
		// node's flags, so adopting a conflicting config is detectable.
		ver := *configVersion
		if ver == 0 && len(seeds) == 0 {
			ver = 1
		}
		mcfg := member.Config{
			Addr: selfAddr,
			Self: func() (float64, int64, float64) {
				// The advertisement is the engine's merged view: boundary is
				// the cheapest shard's, free and density span all shards.
				sm := srv.Engine().SampleAt(srv.Now())
				return sm.Boundary, srv.Engine().Free(), sm.Density
			},
			Seeds:    seeds,
			Interval: *gossipInterval,
			Logger:   log,
			Registry: srv.Metrics(),
			Events:   srv.Events(),
			Device:   string(device),
			Cluster: wire.ClusterConfig{
				Version:             ver,
				Origin:              selfAddr,
				Replicas:            uint32(*replicas),
				Threshold:           *replThreshold,
				GossipIntervalNanos: int64(*gossipInterval),
				RepairIntervalNanos: int64(*repairInterval),
			},
		}
		if tlsClientCfg != nil {
			mcfg.Dial = secure.Dialer(tlsClientCfg, 2*time.Second)
		}
		agent, err := member.NewAgent(mcfg)
		if err != nil {
			return err
		}
		srv.SetMembership(agent)
		if *replicas > 1 {
			rcfg := repair.Config{
				Replicas:  *replicas,
				Threshold: *replThreshold,
				Interval:  *repairInterval,
				SelfAddr:  selfAddr,
				Local:     srv,
				Peers:     agent,
				Logger:    log,
				Registry:  srv.Metrics(),
				Events:    srv.Events(),
				Cluster:   agent,
			}
			if tlsClientCfg != nil {
				ccfg := client.DefaultConfig()
				ccfg.TLS = tlsClientCfg
				rcfg.Connect = func(addr string) (*client.Client, error) {
					return client.DialConfig(addr, 2*time.Second, ccfg)
				}
			}
			mgr, err = repair.NewManager(rcfg)
			if err != nil {
				return err
			}
			srv.SetRepair(mgr)
		}
		cctx, cancel := context.WithCancel(ctx)
		clusterCancel = cancel
		clusterWG.Add(1)
		go func() {
			defer clusterWG.Done()
			agent.Run(cctx)
		}()
		if mgr != nil {
			clusterWG.Add(1)
			go func() {
				defer clusterWG.Done()
				mgr.Run(cctx)
			}()
		}
		log.Info("cluster mode", "advertise", selfAddr, "seeds", seeds,
			"replicas", *replicas, "repl_threshold", *replThreshold)
	}
	if *statusAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", srv.StatusHandler())
		mux.Handle("/metrics", srv.MetricsHandler())
		if *pprof {
			mux.HandleFunc("/debug/pprof/", nhpprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
		}
		statusSrv := &http.Server{Addr: *statusAddr, Handler: mux}
		go func() {
			<-ctx.Done()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := statusSrv.Shutdown(shutdownCtx); err != nil {
				log.Error("status shutdown", "err", err)
			}
		}()
		go func() {
			log.Info("status endpoint", "addr", *statusAddr)
			if err := statusSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("status endpoint", "err", err)
			}
		}()
	}
	if err := srv.Serve(ctx, l); err != nil {
		return err
	}
	// Stop the cluster loops (and wait for an in-flight repair pass) before
	// touching the WAL below; repair pulls append journal records.
	if clusterCancel != nil {
		clusterCancel()
		clusterWG.Wait()
		if mgr != nil {
			if err := mgr.Close(); err != nil {
				log.Error("close repair connections", "err", err)
			}
		}
	}
	// Serve has returned, so every handler -- and thus every journal
	// append -- is done. Checkpoint the final state (making the next boot
	// replay-free), then sync and close the WAL while we can still report
	// failures, instead of relying on the deferred Close.
	if len(wals) > 0 {
		if *checkpoint > 0 {
			if cp, err := srv.Checkpoint(); err != nil {
				log.Error("final checkpoint", "err", err)
			} else {
				log.Info("final checkpoint", "seq", cp.Seq, "objects", cp.Objects)
			}
		}
		for _, w := range wals {
			if err := w.Sync(); err != nil {
				log.Error("sync wal", "err", err)
			}
			if err := w.Close(); err != nil {
				log.Error("close wal", "err", err)
			}
		}
	}
	log.Info("besteffsd stopped")
	return nil
}

// policyByName maps a CLI name to a policy.
func policyByName(name string, share float64) (policy.Policy, error) {
	switch name {
	case "temporal":
		return policy.TemporalImportance{}, nil
	case "fifo":
		return policy.FIFO{}, nil
	case "traditional":
		return policy.Traditional{}, nil
	case "fair-share", "fairshare":
		if share <= 0 || share > 1 {
			return nil, fmt.Errorf("-share %v outside (0, 1]", share)
		}
		return policy.FairShare{MaxFraction: share}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want temporal, fifo, traditional or fair-share)", name)
	}
}
