package main

import "testing"

func TestPolicyByName(t *testing.T) {
	tests := []struct {
		name    string
		share   float64
		want    string
		wantErr bool
	}{
		{name: "temporal", want: "temporal-importance"},
		{name: "fifo", want: "palimpsest-fifo"},
		{name: "traditional", want: "traditional"},
		{name: "fair-share", share: 0.5, want: "fair-share"},
		{name: "fairshare", share: 0.25, want: "fair-share"},
		{name: "fair-share", share: 0, wantErr: true},
		{name: "fair-share", share: 1.5, wantErr: true},
		{name: "lru", wantErr: true},
		{name: "", wantErr: true},
	}
	for _, tt := range tests {
		pol, err := policyByName(tt.name, tt.share)
		if tt.wantErr {
			if err == nil {
				t.Errorf("policyByName(%q, %v) succeeded, want error", tt.name, tt.share)
			}
			continue
		}
		if err != nil {
			t.Errorf("policyByName(%q, %v): %v", tt.name, tt.share, err)
			continue
		}
		if pol.Name() != tt.want {
			t.Errorf("policyByName(%q) = %q, want %q", tt.name, pol.Name(), tt.want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run([]string{"-addr", "not-an-address"}); err == nil {
		t.Error("bad address accepted")
	}
	if err := run([]string{"-max-conns", "-1"}); err == nil {
		t.Error("negative -max-conns accepted")
	}
	if err := run([]string{"-pprof"}); err == nil {
		t.Error("-pprof without -status accepted")
	}
	if err := run([]string{"-sample", "1s", "-sample-window", "0"}); err == nil {
		t.Error("zero -sample-window accepted")
	}
	if err := run([]string{"-wal-segment", "0"}); err == nil {
		t.Error("zero -wal-segment accepted")
	}
	if err := run([]string{"-wal-segment", "-4096"}); err == nil {
		t.Error("negative -wal-segment accepted")
	}
}
