// Command besteffslint runs the project's static-analysis suite (see
// internal/lint) over the repository:
//
//	go run ./cmd/besteffslint ./...
//
// Each finding prints as file:line:col: check: message. Flags:
//
//	-format f        output format: text (default), json, or sarif
//	-json            shorthand for -format json
//	-checks a,b,...  run only the named checks (default: all)
//	-list            print the available checks and exit
//	-C dir           change to dir before resolving package patterns
//
// Findings are suppressed in source with "//lint:ignore <check> <reason>"
// on (or directly above) the offending line; the reason is mandatory.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"besteffs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("besteffslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format  = fs.String("format", "text", "output format: text, json, or sarif")
		jsonOut = fs.Bool("json", false, "shorthand for -format json")
		checks  = fs.String("checks", "", "comma-separated checks to run (default: all)")
		list    = fs.Bool("list", false, "list available checks and exit")
		chdir   = fs.String("C", ".", "directory to resolve package patterns in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "besteffslint: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	switch *format {
	case "json":
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]finding, len(diags))
		for i, d := range diags {
			out[i] = finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message}
		}
		if err := encodeIndented(stdout, out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case "sarif":
		if err := encodeIndented(stdout, sarifReport(analyzers, diags)); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if *format == "text" {
			fmt.Fprintf(stderr, "besteffslint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// encodeIndented writes v as two-space-indented JSON.
func encodeIndented(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
