// Command besteffslint runs the project's static-analysis suite (see
// internal/lint) over the repository:
//
//	go run ./cmd/besteffslint ./...
//
// Each finding prints as file:line:col: check: message. Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-checks a,b,...  run only the named checks (default: all)
//	-list            print the available checks and exit
//	-C dir           change to dir before resolving package patterns
//
// Findings are suppressed in source with "//lint:ignore <check> <reason>"
// on (or directly above) the offending line; the reason is mandatory.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"besteffs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("besteffslint", flag.ContinueOnError)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		checks  = fs.String("checks", "", "comma-separated checks to run (default: all)")
		list    = fs.Bool("list", false, "list available checks and exit")
		chdir   = fs.String("C", ".", "directory to resolve package patterns in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]finding, len(diags))
		for i, d := range diags {
			out[i] = finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "besteffslint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
