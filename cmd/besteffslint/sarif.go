package main

// Minimal SARIF 2.1.0 encoding of a lint run, enough for code-scanning
// uploaders and editors that ingest the standard: one run, one driver, one
// rule per selected check, one result per finding with a physical
// location. Fields beyond that (fixes, code flows, fingerprints) are
// deliberately omitted until something consumes them.

import "besteffs/internal/lint"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifReport renders the run: every selected analyzer becomes a rule (so
// a clean run still documents what was checked), every diagnostic a
// warning-level result.
func sarifReport(analyzers []*lint.Analyzer, diags []lint.Diagnostic) sarifLog {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Check,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "besteffslint", Rules: rules}}, Results: results}},
	}
}
