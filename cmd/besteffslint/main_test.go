package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// fixtureDir is the lint package's fixture module, which contains one
// deliberate violation per analyzer.
const fixtureDir = "../../internal/lint/testdata/src"

func TestRunExitCodes(t *testing.T) {
	if got := run([]string{"-list"}, io.Discard, io.Discard); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"-checks", "nosuchcheck", "./..."}, io.Discard, io.Discard); got != 2 {
		t.Errorf("run(-checks nosuchcheck) = %d, want 2", got)
	}
	if got := run([]string{"-format", "xml", "./..."}, io.Discard, io.Discard); got != 2 {
		t.Errorf("run(-format xml) = %d, want 2", got)
	}
	if got := run([]string{"-C", fixtureDir, "./..."}, io.Discard, io.Discard); got != 1 {
		t.Errorf("run over violation fixtures = %d, want 1", got)
	}
	if got := run([]string{"-C", fixtureDir, "-json", "./..."}, io.Discard, io.Discard); got != 1 {
		t.Errorf("run -json over violation fixtures = %d, want 1", got)
	}
	// A check with no fixture findings in a clean subset exits 0: the
	// dispatch fixture package violates only wireexhaustive, so running
	// just deprecatedapi over it is clean.
	if got := run([]string{"-C", fixtureDir, "-checks", "deprecatedapi", "./internal/dispatch/"}, io.Discard, io.Discard); got != 0 {
		t.Errorf("run deprecatedapi over dispatch fixture = %d, want 0", got)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if got := run([]string{"-C", fixtureDir, "-format", "json", "-checks", "hotpath", "./internal/hot/", "./internal/hotdep/"}, &out, io.Discard); got != 1 {
		t.Fatalf("run -format json over hotpath fixtures = %d, want 1", got)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	for _, f := range findings {
		if f.Check != "hotpath" || f.File == "" || f.Line == 0 {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

func TestRunSARIFOutput(t *testing.T) {
	var out bytes.Buffer
	if got := run([]string{"-C", fixtureDir, "-format", "sarif", "-checks", "hotpath,lockorder", "./..."}, &out, io.Discard); got != 1 {
		t.Fatalf("run -format sarif over fixtures = %d, want 1", got)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 and one run", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "besteffslint" || len(r.Tool.Driver.Rules) != 2 {
		t.Errorf("driver=%q rules=%d, want besteffslint with the 2 selected rules", r.Tool.Driver.Name, len(r.Tool.Driver.Rules))
	}
	if len(r.Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	sawCycle := false
	for _, res := range r.Results {
		if res.RuleID == "" || len(res.Locations) == 0 ||
			res.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" ||
			res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("malformed result: %+v", res)
		}
		if res.RuleID == "lockorder" && strings.Contains(res.Message.Text, "lock-order cycle") {
			sawCycle = true
		}
	}
	if !sawCycle {
		t.Error("no lockorder cycle result in SARIF output")
	}
}
