package main

import "testing"

// fixtureDir is the lint package's fixture module, which contains one
// deliberate violation per analyzer.
const fixtureDir = "../../internal/lint/testdata/src"

func TestRunExitCodes(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"-checks", "nosuchcheck", "./..."}); got != 2 {
		t.Errorf("run(-checks nosuchcheck) = %d, want 2", got)
	}
	if got := run([]string{"-C", fixtureDir, "./..."}); got != 1 {
		t.Errorf("run over violation fixtures = %d, want 1", got)
	}
	if got := run([]string{"-C", fixtureDir, "-json", "./..."}); got != 1 {
		t.Errorf("run -json over violation fixtures = %d, want 1", got)
	}
	// A check with no fixture findings in a clean subset exits 0: the
	// dispatch fixture package violates only wireexhaustive, so running
	// just deprecatedapi over it is clean.
	if got := run([]string{"-C", fixtureDir, "-checks", "deprecatedapi", "./internal/dispatch/"}); got != 0 {
		t.Errorf("run deprecatedapi over dispatch fixture = %d, want 0", got)
	}
}
