package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "/nonexistent/trace.csv"}); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := run([]string{"-trace", "x", "-policy", "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run([]string{"-trace", "x", "-horizon", "soon"}); err == nil {
		t.Error("bad horizon accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	content := strings.Join([]string{
		"t,id,size_bytes,importance,owner,class",
		`1h,a,400,"twostep:p=1,persist=5d,wane=5d",u,1`,
		`2d,b,400,constant:p=0.9,u,0`,
		`4d,c,400,constant:p=0.95,v,0`,
		"",
	}, "\n")
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	csvOut := filepath.Join(dir, "density.csv")
	if err := run([]string{
		"-trace", trace, "-capacity", "1000", "-horizon", "20d",
		"-density-csv", csvOut,
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out, err := os.ReadFile(csvOut)
	if err != nil {
		t.Fatalf("density csv not written: %v", err)
	}
	if !strings.HasPrefix(string(out), "t_seconds,density\n") {
		t.Errorf("csv header = %q", string(out[:30]))
	}
}
