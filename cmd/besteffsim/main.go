// Command besteffsim replays an arrival trace against a simulated storage
// unit and reports what the reclamation policy did: admissions, rejections,
// evictions, achieved lifetimes, and the storage importance density. It is
// the what-if tool for annotation design -- record or write a trace, then
// sweep policies and capacities over it.
//
// Usage:
//
//	besteffsim -trace FILE [-capacity BYTES] [-policy NAME] [-share F]
//	           [-horizon DUR] [-density-csv FILE]
//
// The trace format is CSV with header "t,id,size_bytes,importance,owner,
// class"; durations accept the day extension ("30d") and the importance
// column uses the spec syntax ("twostep:p=1,persist=15d,wane=15d"). See
// internal/workload.ReadTrace.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"besteffs/internal/importance"
	"besteffs/internal/metrics"
	"besteffs/internal/plot"
	"besteffs/internal/policy"
	"besteffs/internal/sim"
	"besteffs/internal/stats"
	"besteffs/internal/store"
	"besteffs/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "besteffsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("besteffsim", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "arrival trace CSV (required)")
	capacity := fs.Int64("capacity", 80<<30, "unit capacity in bytes")
	policyName := fs.String("policy", "temporal", "admission policy: temporal, fifo, traditional or fair-share")
	share := fs.Float64("share", 0.5, "per-owner fraction for -policy fair-share")
	horizonStr := fs.String("horizon", "365d", "simulated span (Go duration, day extension allowed)")
	densityCSV := fs.String("density-csv", "", "write hourly density samples to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		fs.Usage()
		return fmt.Errorf("need -trace")
	}
	horizon, err := importance.ParseDuration(*horizonStr)
	if err != nil {
		return err
	}
	pol, err := policyByName(*policyName, *share)
	if err != nil {
		return err
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	rows, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("trace %s has no arrivals", *tracePath)
	}

	var (
		lifetimes  []float64
		reclaimImp []float64
		rejections int
	)
	unit, err := store.New(*capacity, pol,
		store.WithEvictionHook(func(e store.Eviction) {
			lifetimes = append(lifetimes, e.LifetimeAchieved.Hours()/24)
			reclaimImp = append(reclaimImp, e.Importance)
		}),
		store.WithRejectionHook(func(store.Rejection) { rejections++ }),
	)
	if err != nil {
		return err
	}

	eng := sim.NewEngine()
	density := metrics.NewSeries("density")
	if err := eng.Every(time.Hour, time.Hour, horizon, func(now time.Duration) {
		density.Add(now, unit.DensityAt(now))
	}); err != nil {
		return err
	}
	replay := &workload.Replay{Rows: rows}
	skipped, err := replay.Install(eng, workload.UnitSink{Unit: unit}, horizon)
	if err != nil {
		return err
	}
	eng.Run(horizon)
	if err := replay.Err(); err != nil {
		return err
	}

	counters := unit.CountersSnapshot()
	fmt.Printf("trace: %d arrivals (%d beyond horizon %s)\n", len(rows), skipped, horizon)
	fmt.Printf("policy %s on %d bytes:\n", pol.Name(), *capacity)
	fmt.Printf("  admitted %d, rejected %d, evicted %d, resident %d\n",
		counters.Admitted, rejections, counters.Evicted, unit.Len())
	if len(lifetimes) > 0 {
		s, err := stats.Summarize(lifetimes)
		if err != nil {
			return err
		}
		fmt.Printf("  lifetime achieved (days): min %.1f, median %.1f, mean %.1f, max %.1f\n",
			s.Min, s.Median, s.Mean, s.Max)
		ri, err := stats.Summarize(reclaimImp)
		if err != nil {
			return err
		}
		fmt.Printf("  importance at reclamation: min %.2f, median %.2f, max %.2f\n",
			ri.Min, ri.Median, ri.Max)
	}
	final := unit.DensityAt(horizon)
	fmt.Printf("  final density %.4f\n", final)

	if pts := density.Points(); len(pts) > 0 {
		chart := plot.Chart{
			Title: "storage importance density", XLabel: "day", YLabel: "density",
			Height: 10, YFixed: true, YMin: 0, YMax: 1,
		}
		series := make([]plot.Point, len(pts))
		for i, p := range pts {
			series[i] = plot.Point{X: p.T.Hours() / 24, Y: p.V}
		}
		chart.Add("density", series)
		fmt.Print(chart.Render())
	}
	if *densityCSV != "" {
		out, err := os.Create(*densityCSV)
		if err != nil {
			return fmt.Errorf("create density csv: %w", err)
		}
		if err := density.CSV(out); err != nil {
			//lint:ignore uncheckederr the CSV write error is the one worth reporting
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return fmt.Errorf("close density csv: %w", err)
		}
		fmt.Printf("(density samples written to %s)\n", *densityCSV)
	}
	return nil
}

// policyByName maps a CLI name to a policy.
func policyByName(name string, share float64) (policy.Policy, error) {
	switch name {
	case "temporal":
		return policy.TemporalImportance{}, nil
	case "fifo":
		return policy.FIFO{}, nil
	case "traditional":
		return policy.Traditional{}, nil
	case "fair-share", "fairshare":
		if share <= 0 || share > 1 {
			return nil, fmt.Errorf("-share %v outside (0, 1]", share)
		}
		return policy.FairShare{MaxFraction: share}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
