package main

// Cluster introspection commands: `trace` reassembles one request's
// cross-node span tree, `cluster-status` merges every member's occupancy
// and repair view into one table, and `events` dumps a node's flight
// recorder. All three fan out: the -addrs list is a set of seeds, expanded
// to every member any seed reports alive, so pointing the tool at one node
// is enough to see the whole cluster.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"besteffs/internal/client"
	"besteffs/internal/telemetry"
	"besteffs/internal/wire"
)

// clusterNode is one reachable member during a fan-out command.
type clusterNode struct {
	addr string
	c    *client.Client
}

// discoverAll expands the seed clients to every alive member the seeds
// know about, dialing the extras. The returned closer closes only the
// extra connections; the seeds belong to the caller. Discovery failures
// are not fatal -- introspection over a partial cluster beats no answer --
// but unreachable seeds are reported so a surprising view is explainable.
func discoverAll(ctx context.Context, clients []*client.Client, addrs []string, timeout time.Duration) ([]clusterNode, func()) {
	nodes := make([]clusterNode, 0, len(clients))
	seen := make(map[string]bool, len(clients))
	for i, c := range clients {
		addr := strings.TrimSpace(addrs[i])
		nodes = append(nodes, clusterNode{addr: addr, c: c})
		seen[addr] = true
	}
	var discovered []string
	for _, n := range nodes {
		members, err := n.c.MembersCtx(ctx)
		if err != nil {
			continue // not every node need answer; any one view will do
		}
		for _, m := range members {
			if m.Alive && m.Addr != "" && !seen[m.Addr] {
				seen[m.Addr] = true
				discovered = append(discovered, m.Addr)
			}
		}
		break
	}
	sort.Strings(discovered)
	var extras []*client.Client
	for _, addr := range discovered {
		c, err := client.Connect(addr, client.WithTimeout(timeout), client.WithTLS(dialTLS))
		if err != nil {
			fmt.Fprintf(os.Stderr, "  (discovered member %s unreachable: %v)\n", addr, err)
			continue
		}
		extras = append(extras, c)
		nodes = append(nodes, clusterNode{addr: addr, c: c})
	}
	return nodes, func() {
		for _, c := range extras {
			c.Close()
		}
	}
}

// spanFromWire converts one dumped span record back to its telemetry form.
func spanFromWire(s wire.Span) telemetry.Span {
	return telemetry.Span{
		Trace:    s.Trace,
		ID:       s.ID,
		Parent:   s.Parent,
		Name:     s.Name,
		Node:     s.Node,
		Peer:     s.Peer,
		Start:    time.Unix(0, s.StartUnixNanos),
		Duration: time.Duration(s.DurationNanos),
		Note:     s.Note,
	}
}

// cmdTrace fans a TRACE_DUMP out to every reachable member and assembles
// the union of their rings into one cross-node timeline. Each node's ring
// only holds the hops that node executed, so the tree is only as complete
// as the set of nodes that answered.
func cmdTrace(ctx context.Context, clients []*client.Client, addrs, args []string, timeout time.Duration) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: trace <trace-id>")
	}
	trace := args[0]
	nodes, closeExtras := discoverAll(ctx, clients, addrs, timeout)
	defer closeExtras()
	var spans []telemetry.Span
	answered := 0
	for _, n := range nodes {
		res, err := n.c.TraceDumpCtx(ctx, trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  (node %s: %v)\n", n.addr, err)
			continue
		}
		answered++
		for _, s := range res.Spans {
			spans = append(spans, spanFromWire(s))
		}
	}
	if answered == 0 {
		return fmt.Errorf("no node answered the trace dump")
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans recorded for trace %s on %d node(s); "+
			"spans live in bounded rings, so old traces age out", trace, answered)
	}
	roots := telemetry.Assemble(spans)
	fmt.Printf("trace %s: %d span(s) from %d node(s)\n", trace, telemetry.CountSpans(roots), answered)
	telemetry.FormatTree(os.Stdout, roots)
	return nil
}

// cmdClusterStatus merges every reachable member's stats, advertisement and
// repair counters into one table: the operator's single-glance view of
// where capacity, density and repair debt sit across the cluster.
func cmdClusterStatus(ctx context.Context, clients []*client.Client, addrs []string, timeout time.Duration) error {
	nodes, closeExtras := discoverAll(ctx, clients, addrs, timeout)
	defer closeExtras()

	// Boundary and liveness come from the membership advertisements; index
	// them by address from the first node that answers MEMBERS.
	ads := make(map[string]wire.MemberInfo)
	for _, n := range nodes {
		members, err := n.c.MembersCtx(ctx)
		if err != nil {
			continue
		}
		for _, m := range members {
			ads[m.Addr] = m
		}
		break
	}

	var (
		totalCap, totalUsed int64
		totalObjects        int
		totalDeficit        uint64
		densitySum          float64
		answered            int
	)
	fmt.Printf("%-21s %-6s %8s %10s %10s %8s %9s %8s %5s\n",
		"node", "state", "density", "boundary", "used", "objects", "deficit", "pending", "cfgv")
	for _, n := range nodes {
		st, err := n.c.StatCtx(ctx)
		if err != nil {
			fmt.Printf("%-21s %-6s (%v)\n", n.addr, "down", err)
			continue
		}
		answered++
		state, boundary, cfgv := "alive", "-", "-"
		if ad, ok := ads[n.addr]; ok {
			boundary = fmt.Sprintf("%.3f", ad.Boundary)
			cfgv = strconv.FormatUint(ad.ConfigVersion, 10)
			if !ad.Alive {
				state = "dead?" // reachable by us, stale to the cluster
			}
		}
		deficit, pending := "-", "-"
		if rs, err := n.c.RepairStatusCtx(ctx); err == nil {
			deficit = strconv.FormatUint(rs.UnderReplicated, 10)
			pending = strconv.FormatUint(rs.Pending, 10)
			totalDeficit += rs.UnderReplicated
		}
		fmt.Printf("%-21s %-6s %8.4f %10s %10d %8d %9s %8s %5s\n",
			n.addr, state, st.Density, boundary, st.Used, st.Objects, deficit, pending, cfgv)
		// Sharded nodes get one sub-row per shard: where inside the node
		// the density and boundary pressure actually sits.
		if len(st.Shards) > 1 {
			for i, sh := range st.Shards {
				occ := 0.0
				if sh.Capacity > 0 {
					occ = float64(sh.Used) / float64(sh.Capacity)
				}
				fmt.Printf("  shard %-3d          %-6s %8.4f %10.3f %10d %8d (%.1f%% full)\n",
					i, "", sh.Density, sh.Boundary, sh.Used, sh.Objects, 100*occ)
			}
		}
		totalCap += st.Capacity
		totalUsed += st.Used
		totalObjects += st.Objects
		densitySum += st.Density
	}
	if answered == 0 {
		return fmt.Errorf("no node answered")
	}
	occupancy := 0.0
	if totalCap > 0 {
		occupancy = float64(totalUsed) / float64(totalCap)
	}
	fmt.Printf("cluster: %d/%d node(s), %d object(s), %d/%d bytes (%.1f%% full), "+
		"mean density %.4f, repair deficit %d\n",
		answered, len(nodes), totalObjects, totalUsed, totalCap, 100*occupancy,
		densitySum/float64(answered), totalDeficit)
	return nil
}

// cmdEvents dumps each node's flight recorder, most recent last: the same
// black box the server appends to chaos-test failures and SIGQUIT output.
func cmdEvents(ctx context.Context, clients []*client.Client, addrs, args []string) error {
	limit := uint32(0)
	if len(args) > 1 {
		return fmt.Errorf("usage: events [limit]")
	}
	if len(args) == 1 {
		n, err := strconv.ParseUint(args[0], 10, 32)
		if err != nil {
			return fmt.Errorf("bad limit %q: %w", args[0], err)
		}
		limit = uint32(n)
	}
	for i, c := range clients {
		res, err := c.EventsCtx(ctx, limit)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: %d event(s)\n", addrs[i], len(res.Events))
		for _, e := range res.Events {
			fmt.Printf("  %6d %s %-12s", e.Seq,
				time.Unix(0, e.WallUnixNanos).Format(time.RFC3339Nano),
				telemetry.EventKind(e.Kind))
			if e.ID != "" {
				fmt.Printf(" id=%s", e.ID)
			}
			if e.Peer != "" {
				fmt.Printf(" peer=%s", e.Peer)
			}
			if e.Importance != 0 || e.Boundary != 0 {
				fmt.Printf(" imp=%.3f boundary=%.3f", e.Importance, e.Boundary)
			}
			if e.Trace != "" {
				fmt.Printf(" trace=%s", e.Trace)
			}
			if e.Detail != "" {
				fmt.Printf(" %s", e.Detail)
			}
			fmt.Println()
		}
	}
	return nil
}
