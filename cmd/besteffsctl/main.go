// Command besteffsctl is the client CLI for Besteffs storage nodes.
//
// Usage:
//
//	besteffsctl [-addrs HOST:PORT[,HOST:PORT...]] <command> [args]
//
// Commands:
//
//	put <id> <file> -importance <spec> [-owner NAME] [-class N]
//	    store a file; with several -addrs the paper's placement
//	    algorithm (probe x nodes, up to m rounds, lowest boundary) picks
//	    the node
//	get <id> [file]     retrieve an object (to stdout or a file)
//	delete <id>         remove an object (single node only)
//	stat                print capacity, usage and density per node
//	probe <size> -importance <spec>
//	    ask each node for the admission boundary of a hypothetical object
//	rejuvenate <id> -importance <spec>
//	    replace an object's annotation with a fresh one aging from now
//	    (single node only)
//	density             print the storage importance density per node,
//	                    plus the sampled density trajectory (time, density,
//	                    used bytes, importance boundary) from nodes running
//	                    with -sample
//	list                list resident object IDs per node
//	members             print each node's membership table: every known
//	                    member with its advertised importance boundary, free
//	                    bytes, density and liveness
//	repair-status       print each node's replication factor, threshold and
//	                    repair counters (pushed, pulled, under-replicated...)
//	trace <trace-id>    fan a TRACE_DUMP out to every live member and print
//	                    the assembled cross-node span tree with per-hop
//	                    latencies; put prints the trace ID to feed this
//	cluster-status      merge every live member's density, boundary,
//	                    occupancy and repair deficit into one table
//	events [limit]      dump each node's flight recorder (admissions,
//	                    evictions, boundary moves, replica traffic,
//	                    membership transitions), most recent last
//	fsck <data-dir>     offline integrity check of a stopped node's data
//	                    directory: verifies WAL segment and checkpoint CRCs,
//	                    blob payload CRCs, and cross-checks residents against
//	                    payload files; exits nonzero on hard damage
//
// Importance specs use the syntax of importance.ParseSpec, e.g.
// "twostep:p=1,persist=15d,wane=15d", "constant:p=0.5", "dirac".
//
// Against a TLS cluster, pass -tls -tls-dir DIR: the directory holds this
// client's certificate (minted on first use) and the tool prints its device
// ID, which operators pin in besteffsd's -tls-peers allowlist.
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"besteffs/internal/client"
	"besteffs/internal/importance"
	"besteffs/internal/object"
	"besteffs/internal/secure"
	"besteffs/internal/telemetry"
)

// dialTLS is the client TLS configuration every dial in this process shares
// (the -addrs seeds and the extra connections fan-out discovery opens); nil
// means cleartext. Set once in run from -tls/-tls-dir.
var dialTLS *tls.Config

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "besteffsctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("besteffsctl", flag.ContinueOnError)
	addrs := fs.String("addrs", "127.0.0.1:7459", "comma-separated node addresses")
	impSpec := fs.String("importance", "twostep:p=1,persist=30d,wane=30d", "importance spec for put/probe")
	owner := fs.String("owner", "", "object owner for put")
	class := fs.Int("class", 0, "object class for put (0 generic, 1 university, 2 student)")
	timeout := fs.Duration("timeout", 5*time.Second, "dial timeout")
	tlsOn := fs.Bool("tls", false, "dial nodes over TLS with mutual authentication")
	tlsDir := fs.String("tls-dir", "", "directory for this client's certificate and key (created on first use; needs -tls)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tlsDir != "" && !*tlsOn {
		return fmt.Errorf("-tls-dir needs -tls")
	}
	if *tlsOn {
		if *tlsDir == "" {
			return fmt.Errorf("-tls needs -tls-dir")
		}
		cert, err := secure.LoadOrCreate(*tlsDir)
		if err != nil {
			return err
		}
		id, err := secure.IDFromTLSCert(cert)
		if err != nil {
			return err
		}
		// The client identity must be in the nodes' -tls-peers allowlist
		// (unless the cluster runs open); print it so the operator can pin it.
		fmt.Fprintf(os.Stderr, "(client device %s)\n", id.Short())
		dialTLS = secure.ClientConfig(cert, nil)
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("need a command")
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	// Every request runs under this context: Ctrl-C cancels in-flight round
	// trips instead of abandoning the terminal to a hung dial.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// fsck works offline on a data directory; handle it before dialing so
	// it runs exactly when the daemon is down (the only safe time).
	if cmd == "fsck" {
		if len(rest) != 1 {
			return fmt.Errorf("usage: fsck <data-dir>")
		}
		return cmdFsck(rest[0], os.Stdout)
	}

	addrList := strings.Split(*addrs, ",")
	clients := make([]*client.Client, 0, len(addrList))
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for _, addr := range addrList {
		c, err := client.Connect(strings.TrimSpace(addr),
			client.WithTimeout(*timeout), client.WithTLS(dialTLS))
		if err != nil {
			return err
		}
		clients = append(clients, c)
	}

	switch cmd {
	case "put":
		return cmdPut(ctx, clients, rest, *impSpec, *owner, *class)
	case "get":
		return cmdGet(ctx, clients, rest)
	case "delete":
		if len(rest) != 1 {
			return fmt.Errorf("usage: delete <id>")
		}
		if len(clients) != 1 {
			return fmt.Errorf("delete needs exactly one -addrs node")
		}
		return clients[0].DeleteCtx(ctx, object.ID(rest[0]))
	case "rejuvenate":
		if len(rest) != 1 {
			return fmt.Errorf("usage: rejuvenate <id>")
		}
		if len(clients) != 1 {
			return fmt.Errorf("rejuvenate needs exactly one -addrs node")
		}
		imp, err := importance.ParseSpec(*impSpec)
		if err != nil {
			return err
		}
		version, err := clients[0].RejuvenateCtx(ctx, object.ID(rest[0]), imp)
		if err != nil {
			return err
		}
		fmt.Printf("rejuvenated %s to version %d with %s\n", rest[0], version, *impSpec)
		return nil
	case "stat":
		return cmdStat(ctx, clients, addrList)
	case "probe":
		return cmdProbe(ctx, clients, addrList, rest, *impSpec)
	case "density":
		return cmdDensity(ctx, clients, addrList)
	case "list":
		return cmdList(ctx, clients, addrList)
	case "members":
		return cmdMembers(ctx, clients, addrList)
	case "repair-status":
		return cmdRepairStatus(ctx, clients, addrList)
	case "trace":
		return cmdTrace(ctx, clients, addrList, rest, *timeout)
	case "cluster-status":
		return cmdClusterStatus(ctx, clients, addrList, *timeout)
	case "events":
		return cmdEvents(ctx, clients, addrList, rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdPut(ctx context.Context, clients []*client.Client, args []string, impSpec, owner string, class int) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: put <id> <file>")
	}
	imp, err := importance.ParseSpec(impSpec)
	if err != nil {
		return err
	}
	payload, err := os.ReadFile(args[1])
	if err != nil {
		return fmt.Errorf("read payload: %w", err)
	}
	req := client.PutRequest{
		ID:         object.ID(args[0]),
		Owner:      owner,
		Class:      object.Class(class),
		Importance: imp,
		Payload:    payload,
	}
	// Run the put under a fresh root trace and print its ID, so the stored
	// object's whole fan-out (placement probes, the put, replica pushes) can
	// be replayed with `besteffsctl trace <id>`.
	sc := telemetry.NewRoot()
	ctx = telemetry.NewContext(ctx, sc)
	if len(clients) == 1 {
		res, err := clients[0].PutCtx(ctx, req)
		if err != nil {
			return err
		}
		if !res.Admitted {
			return fmt.Errorf("rejected: storage full at importance boundary %.3f", res.Boundary)
		}
		fmt.Printf("stored %s (%d bytes); preempted %d object(s), highest importance %.3f\n",
			req.ID, len(payload), len(res.Evicted), res.Boundary)
		fmt.Printf("trace %s\n", sc.Trace)
		return nil
	}
	cc, err := client.NewClusterClient(clients, rand.New(rand.NewSource(time.Now().UnixNano())))
	if err != nil {
		return err
	}
	p, err := cc.PutCtx(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("stored %s on node %d (boundary %.3f, %d eviction(s))\n",
		req.ID, p.Node, p.Boundary, len(p.Evicted))
	fmt.Printf("trace %s\n", sc.Trace)
	return nil
}

func cmdGet(ctx context.Context, clients []*client.Client, args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: get <id> [file]")
	}
	id := object.ID(args[0])
	var (
		obj client.Object
		err error
	)
	if len(clients) == 1 {
		obj, err = clients[0].GetCtx(ctx, id)
	} else {
		var cc *client.ClusterClient
		cc, err = client.NewClusterClient(clients, rand.New(rand.NewSource(1)))
		if err != nil {
			return err
		}
		obj, err = cc.GetCtx(ctx, id)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d bytes, owner %q, class %s, age %s, current importance %.3f\n",
		obj.ID, len(obj.Payload), obj.Owner, obj.Class, obj.Age.Round(time.Second), obj.CurrentImportance)
	if len(args) == 2 {
		if err := os.WriteFile(args[1], obj.Payload, 0o644); err != nil {
			return fmt.Errorf("write payload: %w", err)
		}
		return nil
	}
	_, err = os.Stdout.Write(obj.Payload)
	return err
}

func cmdStat(ctx context.Context, clients []*client.Client, addrs []string) error {
	for i, c := range clients {
		st, err := c.StatCtx(ctx)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: %d/%d bytes used, %d objects, density %.4f\n",
			addrs[i], st.Used, st.Capacity, st.Objects, st.Density)
		if len(st.Shards) > 1 {
			for si, sh := range st.Shards {
				fmt.Printf("  shard %d: %d/%d bytes used, %d objects, density %.4f, boundary %.3f\n",
					si, sh.Used, sh.Capacity, sh.Objects, sh.Density, sh.Boundary)
			}
		}
	}
	return nil
}

func cmdProbe(ctx context.Context, clients []*client.Client, addrs, args []string, impSpec string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: probe <size-bytes>")
	}
	size, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad size %q: %w", args[0], err)
	}
	imp, err := importance.ParseSpec(impSpec)
	if err != nil {
		return err
	}
	for i, c := range clients {
		admissible, boundary, err := c.ProbeCtx(ctx, size, imp)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: admissible=%t highest-importance-preempted=%.3f\n",
			addrs[i], admissible, boundary)
	}
	return nil
}

func cmdDensity(ctx context.Context, clients []*client.Client, addrs []string) error {
	for i, c := range clients {
		d, err := c.DensityCtx(ctx)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: %.4f\n", addrs[i], d)
		history, err := c.DensityHistoryCtx(ctx)
		if err != nil {
			// Older nodes do not speak DENSITY_HISTORY; the instantaneous
			// density above is all they offer.
			fmt.Fprintf(os.Stderr, "  (no density history: %v)\n", err)
			continue
		}
		for _, s := range history {
			fmt.Printf("  t=%-14s density=%.4f used=%d boundary=%.3f\n",
				s.At, s.Density, s.Used, s.Boundary)
		}
	}
	return nil
}

func cmdMembers(ctx context.Context, clients []*client.Client, addrs []string) error {
	for i, c := range clients {
		members, err := c.MembersCtx(ctx)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: %d member(s)\n", addrs[i], len(members))
		for _, m := range members {
			health := "alive"
			if !m.Alive {
				health = "dead"
			}
			device := "-"
			if m.Device != "" {
				device = secure.DeviceID(m.Device).Short()
			}
			fmt.Printf("  %-21s %-5s boundary=%.3f free=%d density=%.4f incarnation=%d version=%d device=%s cfgv=%d\n",
				m.Addr, health, m.Boundary, m.Free, m.Density, m.Incarnation, m.Version, device, m.ConfigVersion)
		}
	}
	return nil
}

func cmdRepairStatus(ctx context.Context, clients []*client.Client, addrs []string) error {
	for i, c := range clients {
		st, err := c.RepairStatusCtx(ctx)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: replicas=%d threshold=%.3f\n", addrs[i], st.Replicas, st.Threshold)
		fmt.Printf("  pushed=%d push-failures=%d pulled=%d bytes-repaired=%d\n",
			st.Pushed, st.PushFailures, st.Pulled, st.BytesRepaired)
		fmt.Printf("  passes=%d under-replicated=%d pending=%d last-pass=%s\n",
			st.Passes, st.UnderReplicated, st.Pending, time.Duration(st.LastPassNanos).Round(time.Millisecond))
	}
	return nil
}

func cmdList(ctx context.Context, clients []*client.Client, addrs []string) error {
	for i, c := range clients {
		ids, err := c.ListCtx(ctx)
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Printf("%s: %d object(s)\n", addrs[i], len(ids))
		for _, id := range ids {
			fmt.Printf("  %s\n", id)
		}
	}
	return nil
}
