package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"besteffs/internal/blob"
	"besteffs/internal/journal"
	"besteffs/internal/object"
	"besteffs/internal/server"
)

// cmdFsck is the offline integrity checker: it inspects a node's data
// directory directly -- no daemon, no dialing -- and verifies every layer
// of the durability stack:
//
//   - WAL segments: every record frame's CRC, classifying a torn tail on
//     the newest segment (normal post-crash state, repaired at boot) apart
//     from real corruption (hard damage);
//   - checkpoints: magic, header CRC and object records of every
//     checkpoint file;
//   - blobs: each payload file's CRC header;
//   - cross-checks: residents implied by checkpoint+WAL must have payload
//     files, and payload files must belong to residents (mismatches are
//     repaired automatically at the next boot, so they are warnings).
//
// A sharded data dir (shard-000, shard-001, ... subdirectories, each with
// its own WAL stream) gets the checkpoint and segment passes per shard;
// the blob cross-check then runs against the union of every shard's
// resident set, since payloads are shared across shards.
//
// It returns an error -- besteffsctl exits nonzero -- iff hard damage was
// found. Run it only while the daemon is stopped; a live WAL legitimately
// has an in-flight tail.
func cmdFsck(dataDir string, out io.Writer) error {
	problems := 0
	warn := func(format string, args ...any) {
		fmt.Fprintf(out, "  warning: "+format+"\n", args...)
	}
	damage := func(format string, args ...any) {
		problems++
		fmt.Fprintf(out, "  DAMAGE: "+format+"\n", args...)
	}

	walDirs, err := fsckWALDirs(dataDir)
	if err != nil {
		return err
	}

	// Metadata pass per WAL stream: checkpoints, segments, and the replayed
	// resident set each stream implies. Every stream must be trustworthy for
	// the blob cross-check to mean anything.
	resident := make(map[object.ID]bool)
	stateTrusted := true
	for _, walDir := range walDirs {
		ok, err := fsckWALDir(walDir, out, damage, resident)
		if err != nil {
			return err
		}
		stateTrusted = stateTrusted && ok
	}

	// Blobs: verify every payload file on disk. Shards share one payload
	// store, so this pass runs once regardless of layout.
	blobDir := filepath.Join(dataDir, "blobs")
	fmt.Fprintf(out, "blobs in %s:\n", blobDir)
	files, err := blob.NewFileStore(blobDir)
	if err != nil {
		return err
	}
	ids, err := files.IDs()
	if err != nil {
		return err
	}
	corrupt := 0
	for _, id := range ids {
		if err := files.Verify(id); err != nil {
			if errors.Is(err, blob.ErrCorrupt) {
				damage("blob %s: %v", id, err)
				corrupt++
				continue
			}
			return err
		}
	}
	fmt.Fprintf(out, "  %d payload file(s), %d corrupt\n", len(ids), corrupt)

	// Cross-check metadata against payloads. These mismatches are the
	// known crash windows reconciliation repairs at boot, so they warn
	// rather than fail.
	if stateTrusted {
		onDisk := make(map[object.ID]bool, len(ids))
		for _, id := range ids {
			onDisk[id] = true
		}
		for id := range resident {
			if !onDisk[id] {
				warn("resident %s has no payload file (dropped at next boot)", id)
			}
		}
		for _, id := range ids {
			if !resident[id] {
				warn("payload %s has no resident (deleted at next boot)", id)
			}
		}
	}

	if problems > 0 {
		return fmt.Errorf("fsck: %d problem(s) found in %s", problems, dataDir)
	}
	fmt.Fprintln(out, "fsck: clean")
	return nil
}

// shardDirPattern matches the per-shard subdirectories RestoreDir lays
// down on a multi-shard node.
var shardDirPattern = regexp.MustCompile(`^shard-\d{3}$`)

// fsckWALDirs discovers the node's WAL streams: the shard-NNN
// subdirectories on a sharded data dir, or the single top-level wal
// directory on a legacy/unsharded one.
func fsckWALDirs(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && shardDirPattern.MatchString(e.Name()) {
			dirs = append(dirs, filepath.Join(dataDir, e.Name(), server.WALDirName))
		}
	}
	if len(dirs) == 0 {
		return []string{filepath.Join(dataDir, server.WALDirName)}, nil
	}
	sort.Strings(dirs)
	return dirs, nil
}

// fsckWALDir runs the checkpoint and segment passes over one WAL stream,
// folding the residents the stream implies into resident. It reports
// whether the stream was clean enough that the next boot would accept it
// (its contribution to the resident set is only meaningful then).
func fsckWALDir(walDir string, out io.Writer, damage func(string, ...any), resident map[object.ID]bool) (bool, error) {
	// Checkpoints: validate every file, remember the newest intact one.
	fmt.Fprintf(out, "checkpoints in %s:\n", walDir)
	seqs, err := journal.ListCheckpoints(walDir)
	if err != nil {
		return false, err
	}
	var newest *journal.Checkpoint
	for _, seq := range seqs {
		path := journal.CheckpointPath(walDir, seq)
		cp, err := journal.ReadCheckpoint(path)
		if err != nil {
			damage("checkpoint %s: %v", filepath.Base(path), err)
			continue
		}
		fmt.Fprintf(out, "  %s: covers segment %d, %d objects, ok\n",
			filepath.Base(path), cp.CoversSeq, len(cp.Objects))
		newest = &cp
	}
	if len(seqs) == 0 {
		fmt.Fprintln(out, "  none")
	}

	// Segments: full scan, reporting every damaged file, while rebuilding
	// the resident set the WAL implies on top of the newest checkpoint.
	afterSeq := uint64(0)
	if newest != nil {
		afterSeq = newest.CoversSeq
		for _, r := range newest.Objects {
			resident[r.ID] = true
		}
	}
	fmt.Fprintf(out, "wal segments in %s:\n", walDir)
	reports, err := journal.CheckWAL(walDir, nil)
	if err != nil {
		return false, err
	}
	stateTrusted := true
	for _, rep := range reports {
		switch rep.Damage {
		case journal.DamageNone:
			fmt.Fprintf(out, "  %s: %d records, %d bytes, ok\n",
				filepath.Base(rep.Path), rep.Records, rep.TotalBytes)
		case journal.DamageTornTail:
			fmt.Fprintf(out, "  %s: %d records, torn tail (%d of %d bytes valid; truncated at next boot)\n",
				filepath.Base(rep.Path), rep.Records, rep.ValidBytes, rep.TotalBytes)
		default:
			damage("segment %s corrupt at offset %d (%d records before the fault)",
				filepath.Base(rep.Path), rep.ValidBytes, rep.Records)
			stateTrusted = false
		}
	}
	if len(reports) == 0 {
		fmt.Fprintln(out, "  none")
	}
	// Replay for the cross-check (only meaningful when the WAL is clean
	// enough that the next boot would accept it).
	if stateTrusted {
		if _, err := journal.ReplayWAL(walDir, afterSeq, func(r journal.Record) error {
			switch r.Kind {
			case journal.KindPut:
				resident[r.ID] = true
			case journal.KindDelete, journal.KindEvict:
				delete(resident, r.ID)
			}
			return nil
		}); err != nil {
			damage("replay: %v", err)
			stateTrusted = false
		}
	}
	return stateTrusted, nil
}
