package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"besteffs/internal/blob"
	"besteffs/internal/importance"
	"besteffs/internal/journal"
	"besteffs/internal/object"
	"besteffs/internal/server"
)

// buildDataDir lays down a small but complete node data directory: payload
// files, two sealed WAL segments plus an active one, and one checkpoint.
func buildDataDir(t *testing.T) string {
	t.Helper()
	dataDir := t.TempDir()
	files, err := blob.NewFileStore(filepath.Join(dataDir, "blobs"))
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	walDir := filepath.Join(dataDir, server.WALDirName)
	wal, err := journal.OpenWAL(walDir, journal.WithSegmentBytes(96))
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	imp := importance.Constant{Level: 0.9}
	for i, id := range []string{"alpha", "beta", "gamma", "delta"} {
		if err := files.Put(object.ID(id), []byte("payload of "+id)); err != nil {
			t.Fatalf("blob put: %v", err)
		}
		if err := wal.Append(journal.Record{
			Kind: journal.KindPut, At: time.Duration(i) * time.Hour,
			ID: object.ID(id), Size: int64(len("payload of " + id)),
			Importance: imp,
		}); err != nil {
			t.Fatalf("wal append: %v", err)
		}
	}
	// One checkpoint covering the first records, then more history.
	sealed, err := wal.Barrier()
	if err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	cp := journal.Checkpoint{CoversSeq: sealed, Resume: 4 * time.Hour}
	for _, id := range []string{"alpha", "beta", "gamma", "delta"} {
		o, err := object.New(object.ID(id), int64(len("payload of "+id)), 0, imp)
		if err != nil {
			t.Fatalf("object.New: %v", err)
		}
		cp.Objects = append(cp.Objects, journal.ObjectRecord(o))
	}
	if err := journal.WriteCheckpoint(walDir, cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := wal.Append(journal.Record{
		Kind: journal.KindRejuvenate, At: 5 * time.Hour, ID: "beta",
		Importance: importance.Constant{Level: 0.4},
	}); err != nil {
		t.Fatalf("wal append: %v", err)
	}
	if err := wal.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}
	return dataDir
}

func TestFsckCleanDirPasses(t *testing.T) {
	dataDir := buildDataDir(t)
	var out bytes.Buffer
	if err := cmdFsck(dataDir, &out); err != nil {
		t.Fatalf("fsck on clean dir: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fsck: clean") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

// flipByte flips one byte of a file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if off < 0 {
		off += int64(len(raw))
	}
	raw[off] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

func TestFsckDetectsFlippedByteInSegment(t *testing.T) {
	dataDir := buildDataDir(t)
	walDir := filepath.Join(dataDir, server.WALDirName)
	segs, err := filepath.Glob(filepath.Join(walDir, "*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v, %v; want >= 2", segs, err)
	}
	// Flip a record byte in the first (sealed) segment.
	flipByte(t, segs[0], 20)

	var out bytes.Buffer
	err = cmdFsck(dataDir, &out)
	if err == nil {
		t.Fatalf("fsck passed a corrupt segment:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DAMAGE") || !strings.Contains(out.String(), "segment") {
		t.Errorf("report does not name the damaged segment:\n%s", out.String())
	}
}

func TestFsckDetectsFlippedByteInBlob(t *testing.T) {
	dataDir := buildDataDir(t)
	files, err := blob.NewFileStore(filepath.Join(dataDir, "blobs"))
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	blobs, err := filepath.Glob(filepath.Join(files.Root(), "*.obj"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("blobs = %v, %v", blobs, err)
	}
	// Flip the last payload byte of one blob file.
	flipByte(t, blobs[0], -1)

	var out bytes.Buffer
	err = cmdFsck(dataDir, &out)
	if err == nil {
		t.Fatalf("fsck passed a corrupt blob:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DAMAGE") || !strings.Contains(out.String(), "blob") {
		t.Errorf("report does not name the damaged blob:\n%s", out.String())
	}
}

func TestFsckDetectsDamagedCheckpoint(t *testing.T) {
	dataDir := buildDataDir(t)
	walDir := filepath.Join(dataDir, server.WALDirName)
	ckpts, err := filepath.Glob(filepath.Join(walDir, "checkpoint-*.ckpt"))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoints = %v, %v; want 1", ckpts, err)
	}
	flipByte(t, ckpts[0], 30)

	var out bytes.Buffer
	err = cmdFsck(dataDir, &out)
	if err == nil {
		t.Fatalf("fsck passed a damaged checkpoint:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "checkpoint") {
		t.Errorf("report does not name the checkpoint:\n%s", out.String())
	}
}

func TestFsckTornTailIsNotDamage(t *testing.T) {
	dataDir := buildDataDir(t)
	walDir := filepath.Join(dataDir, server.WALDirName)
	segs, err := filepath.Glob(filepath.Join(walDir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	// Tear the newest segment mid-record: the defined post-crash state.
	newest := segs[len(segs)-1]
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	var out bytes.Buffer
	if err := cmdFsck(dataDir, &out); err != nil {
		t.Fatalf("fsck failed on a torn tail: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "torn tail") {
		t.Errorf("report does not mention the torn tail:\n%s", out.String())
	}
}

// buildShardedDataDir lays down a 4-shard data directory: one WAL stream
// per shard-NNN subdirectory (each with a sealed segment and a
// checkpoint), and the shared payload store.
func buildShardedDataDir(t *testing.T, shards int) string {
	t.Helper()
	dataDir := t.TempDir()
	files, err := blob.NewFileStore(filepath.Join(dataDir, "blobs"))
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	imp := importance.Constant{Level: 0.9}
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for si := 0; si < shards; si++ {
		walDir := server.ShardWALDir(dataDir, shards, si)
		wal, err := journal.OpenWAL(walDir, journal.WithSegmentBytes(96))
		if err != nil {
			t.Fatalf("OpenWAL shard %d: %v", si, err)
		}
		cp := journal.Checkpoint{Resume: 4 * time.Hour}
		// Round-robin the objects over the shards; fsck only cares that
		// each stream's residents union into the shared blob cross-check.
		for i, id := range names {
			if i%shards != si {
				continue
			}
			if err := files.Put(object.ID(id), []byte("payload of "+id)); err != nil {
				t.Fatalf("blob put: %v", err)
			}
			if err := wal.Append(journal.Record{
				Kind: journal.KindPut, At: time.Duration(i) * time.Hour,
				ID: object.ID(id), Size: int64(len("payload of " + id)),
				Importance: imp,
			}); err != nil {
				t.Fatalf("wal append shard %d: %v", si, err)
			}
			o, err := object.New(object.ID(id), int64(len("payload of "+id)), 0, imp)
			if err != nil {
				t.Fatalf("object.New: %v", err)
			}
			cp.Objects = append(cp.Objects, journal.ObjectRecord(o))
		}
		sealed, err := wal.Barrier()
		if err != nil {
			t.Fatalf("Barrier shard %d: %v", si, err)
		}
		cp.CoversSeq = sealed
		if err := journal.WriteCheckpoint(walDir, cp); err != nil {
			t.Fatalf("WriteCheckpoint shard %d: %v", si, err)
		}
		if err := wal.Close(); err != nil {
			t.Fatalf("wal close shard %d: %v", si, err)
		}
	}
	return dataDir
}

func TestFsckShardedCleanDirPasses(t *testing.T) {
	dataDir := buildShardedDataDir(t, 4)
	var out bytes.Buffer
	if err := cmdFsck(dataDir, &out); err != nil {
		t.Fatalf("fsck on clean sharded dir: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fsck: clean") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
	// Every shard's WAL stream must have been visited.
	for si := 0; si < 4; si++ {
		want := server.ShardDirName(si)
		if !strings.Contains(out.String(), want) {
			t.Errorf("report never visits %s:\n%s", want, out.String())
		}
	}
}

func TestFsckShardedDetectsCorruptShardSegment(t *testing.T) {
	dataDir := buildShardedDataDir(t, 4)
	// Flip a record byte in one shard's sealed segment; the other three
	// shards stay pristine.
	walDir := server.ShardWALDir(dataDir, 4, 2)
	segs, err := filepath.Glob(filepath.Join(walDir, "*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v, %v; want >= 2", segs, err)
	}
	flipByte(t, segs[0], 20)

	var out bytes.Buffer
	err = cmdFsck(dataDir, &out)
	if err == nil {
		t.Fatalf("fsck passed a corrupt shard segment:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DAMAGE") || !strings.Contains(out.String(), "segment") {
		t.Errorf("report does not name the damaged segment:\n%s", out.String())
	}
}
