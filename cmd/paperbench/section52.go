package main

import (
	"fmt"

	"besteffs/internal/experiments"
	"besteffs/internal/object"
	"besteffs/internal/plot"
)

// cmdTable1 prints the lecture lifetime parameters.
func cmdTable1(cfg config) error {
	rows, err := experiments.RunTable1()
	if err != nil {
		return err
	}
	var cells [][]string
	var csv []string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Term.String(),
			fmt.Sprintf("%d", r.TermBegin),
			fmt.Sprintf("%d - today", r.PersistUntilDay),
			fmt.Sprintf("%d", r.WaneDays),
		})
		csv = append(csv, fmt.Sprintf("%s,%d,%d,%d",
			r.Term, r.TermBegin, r.PersistUntilDay, r.WaneDays))
	}
	fmt.Println("Table 1: lifetimes for the lecture capture system")
	fmt.Print(plot.Table(
		[]string{"term", "term begin (day of year)", "t_persist (days)", "t_wane (days)"}, cells))
	return writeCSV(cfg, "table1", "term,term_begin,persist_until_day,wane_days", csv)
}

// cmdFig8 prints the synthetic download trace.
func cmdFig8(cfg config) error {
	res, err := experiments.RunFig8(experiments.Fig8Config{Seed: cfg.seed})
	if err != nil {
		return err
	}
	chart := plot.Chart{
		Title:  "Figure 8 (synthetic): lecture downloads per day, spring term + tail",
		XLabel: "day of term", YLabel: "downloads", Height: 12,
	}
	pts := make([]plot.Point, len(res.Days))
	csv := make([]string, len(res.Days))
	for i, d := range res.Days {
		pts[i] = plot.Point{X: float64(d.Day), Y: float64(d.Downloads)}
		csv[i] = fmt.Sprintf("%d,%d,%t,%t", d.Day, d.Downloads, d.Exam, d.Slashdot)
	}
	chart.Add("downloads", pts)
	fmt.Print(chart.Render())
	fmt.Printf("total downloads: %d; peak %d on day %d (the slashdotting)\n",
		res.Total, res.PeakDownloads, res.PeakDay)
	fmt.Println("(synthetic trace: the paper's raw access log is unavailable; see DESIGN.md)")
	return writeCSV(cfg, "fig8", "day,downloads,exam,slashdot", csv)
}

// runLecture shares the Section 5.2 run across fig9..fig12.
func runLecture(cfg config) ([]experiments.LectureRun, error) {
	return experiments.RunLecture(experiments.LectureConfig{
		Seed: cfg.seed, Years: cfg.years, Palimpsest: true,
	})
}

// cmdFig9 prints the lifetimes achieved in the lecture scenario.
func cmdFig9(cfg config) error {
	runs, err := runLecture(cfg)
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, r := range runs {
		for _, class := range []object.Class{object.ClassUniversity, object.ClassStudent} {
			o := r.ByClass[class]
			s := o.LifetimeSummary
			rows = append(rows, []string{
				string(r.Policy), gbCap(r.Capacity), class.String(),
				fmt.Sprintf("%d", o.Generated),
				fmt.Sprintf("%d", len(o.Evictions)),
				fmt.Sprintf("%d", o.Rejected),
				fmt.Sprintf("%.0f", s.Median),
				fmt.Sprintf("%.0f", s.P90),
			})
			for _, p := range o.Evictions {
				csv = append(csv, fmt.Sprintf("%s,%d,%s,%.2f,%.2f",
					r.Policy, r.Capacity/experiments.GB, class, p.EvictionDay, p.LifetimeDays))
			}
		}
	}
	fmt.Println("Figure 9: lifetime achieved, lecture capture (two-step importance)")
	fmt.Print(plot.Table([]string{
		"policy", "disk", "class", "objects", "evicted", "rejected",
		"median lifetime (d)", "p90 (d)",
	}, rows))
	return writeCSV(cfg, "fig9", "policy,capacity_gb,class,eviction_day,lifetime_days", csv)
}

// cmdFig10 prints importance at reclamation for university objects.
func cmdFig10(cfg config) error {
	runs, err := runLecture(cfg)
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, r := range runs {
		o := r.ByClass[object.ClassUniversity]
		if len(o.Evictions) == 0 {
			continue
		}
		s := o.ReclaimImportance
		rows = append(rows, []string{
			string(r.Policy), gbCap(r.Capacity),
			fmt.Sprintf("%d", len(o.Evictions)),
			fmt.Sprintf("%.2f", s.Min),
			fmt.Sprintf("%.2f", s.P10),
			fmt.Sprintf("%.2f", s.Median),
			fmt.Sprintf("%.2f", s.Max),
		})
		for _, p := range o.Evictions {
			csv = append(csv, fmt.Sprintf("%s,%d,%.2f,%.4f",
				r.Policy, r.Capacity/experiments.GB, p.EvictionDay, p.Importance))
		}
	}
	fmt.Println("Figure 10: importance at reclamation, university-created objects")
	fmt.Println("(Palimpsest importance is projected from the two-step function)")
	fmt.Print(plot.Table([]string{
		"policy", "disk", "evictions", "min", "p10", "median", "max",
	}, rows))
	return writeCSV(cfg, "fig10", "policy,capacity_gb,eviction_day,importance", csv)
}

// cmdFig11 prints the lecture-scenario time constants.
func cmdFig11(cfg config) error {
	runs, err := runLecture(cfg)
	if err != nil {
		return err
	}
	for _, r := range runs {
		if r.Policy != experiments.PolicyTemporal {
			continue
		}
		title := fmt.Sprintf("Figure 11: time constant, lecture workload, %s", gbCap(r.Capacity))
		if err := printTimeConstants(title, cfg,
			fmt.Sprintf("fig11_%s", gbCap(r.Capacity)), r.TimeConstants); err != nil {
			return err
		}
	}
	return nil
}

// cmdFig12 prints the lecture-scenario density series.
func cmdFig12(cfg config) error {
	runs, err := runLecture(cfg)
	if err != nil {
		return err
	}
	var csv []string
	for _, r := range runs {
		if r.Policy != experiments.PolicyTemporal {
			continue
		}
		chart := plot.Chart{
			Title: fmt.Sprintf(
				"Figure 12: instantaneous storage importance density, lecture workload, %s",
				gbCap(r.Capacity)),
			XLabel: "day", YLabel: "density", Height: 12,
			YFixed: true, YMin: 0, YMax: 1,
		}
		pts := make([]plot.Point, 0, len(r.Density))
		for _, p := range r.Density {
			day := float64(p.T) / float64(experiments.Day)
			pts = append(pts, plot.Point{X: day, Y: p.V})
			csv = append(csv, fmt.Sprintf("%d,%.3f,%.4f", r.Capacity/experiments.GB, day, p.V))
		}
		chart.Add("density", pts)
		fmt.Print(chart.Render())
	}
	fmt.Println("(as storage pressure eases, more objects are retained and the density drops)")
	return writeCSV(cfg, "fig12", "capacity_gb,day,density", csv)
}

// cmdUniWide prints the Section 5.3 summary.
func cmdUniWide(cfg config) error {
	runs, err := experiments.RunUniWide(experiments.UniWideConfig{
		Seed: cfg.seed, FullScale: cfg.full,
	})
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, r := range runs {
		for _, class := range []object.Class{object.ClassUniversity, object.ClassStudent} {
			o := r.ByClass[class]
			rejFrac := 0.0
			if o.Generated > 0 {
				rejFrac = float64(o.Rejected) / float64(o.Generated)
			}
			rows = append(rows, []string{
				gbCap(r.NodeCapacity), class.String(),
				fmt.Sprintf("%d", o.Generated),
				fmt.Sprintf("%d", o.Rejected),
				fmt.Sprintf("%.1f%%", rejFrac*100),
				fmt.Sprintf("%.0f", o.LifetimeSummary.Median),
			})
			csv = append(csv, fmt.Sprintf("%d,%s,%d,%d,%.4f,%.1f",
				r.NodeCapacity/experiments.GB, class, o.Generated, o.Rejected,
				rejFrac, o.LifetimeSummary.Median))
		}
	}
	fmt.Println("Section 5.3: university-wide capture on the distributed store")
	fmt.Print(plot.Table([]string{
		"node disk", "class", "objects", "rejected", "reject %", "median lifetime (d)",
	}, rows))
	for _, r := range runs {
		fmt.Printf("%s nodes: total capacity %.0f GB, demand %.0f GB, placements %d, cluster rejections %d, final avg density %.3f, utilization median %.2f\n",
			gbCap(r.NodeCapacity), r.TotalCapacityGB, r.DemandGB, r.Placements,
			r.ClusterRejections, r.FinalAvgDensity, r.UnitUtilization.Median)
		fmt.Printf("  gossip density estimate at node 0: %.3f after %d push-sum rounds (true mean %.3f, no central component)\n",
			r.GossipDensity, r.GossipRounds, r.FinalAvgDensity)
	}
	return writeCSV(cfg, "uniwide",
		"node_capacity_gb,class,objects,rejected,reject_frac,median_lifetime_days", csv)
}

// cmdChurn runs the growing-storage churn scenario (the hardware turnover
// the paper anticipates but does not simulate).
func cmdChurn(cfg config) error {
	res, err := experiments.RunChurn(experiments.ChurnConfig{Seed: cfg.seed})
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, y := range res.Years {
		rows = append(rows, []string{
			fmt.Sprintf("%d", y.Year),
			fmt.Sprintf("%.0f", y.TotalCapacityGB),
			fmt.Sprintf("%d", y.Replacements),
			fmt.Sprintf("%.3f", y.AvgDensity),
			fmt.Sprintf("%.0f", y.StudentLifetime.Median),
			fmt.Sprintf("%d", y.StudentRejected),
		})
		csv = append(csv, fmt.Sprintf("%d,%.0f,%d,%.4f,%.1f,%d",
			y.Year, y.TotalCapacityGB, y.Replacements, y.AvgDensity,
			y.StudentLifetime.Median, y.StudentRejected))
	}
	fmt.Println("Churn (extension): 40% of desktops replaced yearly with 2x disks; annotations unchanged")
	fmt.Print(plot.Table([]string{
		"year", "capacity (GB)", "replaced", "avg density",
		"student median lifetime (d)", "student rejected",
	}, rows))
	fmt.Println("added storage flows to the less important objects without re-annotation (Section 1)")
	return writeCSV(cfg, "churn",
		"year,capacity_gb,replacements,avg_density,student_median_days,student_rejected", csv)
}

// cmdPredictor quantifies the Section 5.1.2 longevity hint: the gap between
// an object's importance and the admission-time density predicts its
// achieved lifetime.
func cmdPredictor(cfg config) error {
	res, err := experiments.RunPredictor(experiments.PredictorConfig{Seed: cfg.seed})
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, b := range res.Buckets {
		if b.Count == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("[%.2f, %.2f)", b.Lo, b.Hi),
			fmt.Sprintf("%d", b.Count),
			fmt.Sprintf("%.1f", b.MeanLifetimeDays),
		})
		csv = append(csv, fmt.Sprintf("%.2f,%.2f,%d,%.2f", b.Lo, b.Hi, b.Count, b.MeanLifetimeDays))
	}
	fmt.Println("Predictor (extension): importance-minus-density gap at admission vs lifetime achieved")
	fmt.Print(plot.Table([]string{"gap band", "objects", "mean lifetime (d)"}, rows))
	fmt.Printf("Pearson correlation (gap, lifetime): %.3f over %d evictions; %d arrivals rejected below the boundary\n",
		res.Correlation, res.Samples, res.RejectedBelowBoundary)
	fmt.Println("\"the difference between the storage density and the object importance gives")
	fmt.Println("some indication of the object longevity\" (Section 5.1.2)")
	return writeCSV(cfg, "predictor", "gap_lo,gap_hi,objects,mean_lifetime_days", csv)
}
