// Command paperbench regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduction library and renders them as
// ASCII charts and tables, optionally emitting CSV for external plotting.
//
// Usage:
//
//	paperbench [flags] <experiment>
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 table1 fig8 fig9 fig10 fig11
// fig12 uniwide ablation churn predictor scaling refresh mixed all
//
// Flags:
//
//	-seed N     workload seed (default 42)
//	-years N    lecture-scenario years (default 5)
//	-full       run the university-wide experiment at full paper scale
//	            (2000 nodes, 2321 courses, 5 years); the default is a
//	            10x-scaled run with the same pressure ratio
//	-csv DIR    also write per-figure CSV files into DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"besteffs/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

type config struct {
	seed  int64
	years int
	full  bool
	csv   string
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	cfg := config{}
	fs.Int64Var(&cfg.seed, "seed", 42, "workload random seed")
	fs.IntVar(&cfg.years, "years", 5, "lecture scenario duration in years")
	fs.BoolVar(&cfg.full, "full", false, "run uniwide at the paper's full scale")
	fs.StringVar(&cfg.csv, "csv", "", "directory for CSV output (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one experiment, got %d", fs.NArg())
	}
	name := strings.ToLower(fs.Arg(0))
	if cfg.csv != "" {
		if err := os.MkdirAll(cfg.csv, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	commands := map[string]func(config) error{
		"fig2":      cmdFig2,
		"fig3":      cmdFig3,
		"fig4":      cmdFig4,
		"fig5":      cmdFig5,
		"fig6":      cmdFig6,
		"fig7":      cmdFig7,
		"table1":    cmdTable1,
		"fig8":      cmdFig8,
		"fig9":      cmdFig9,
		"fig10":     cmdFig10,
		"fig11":     cmdFig11,
		"fig12":     cmdFig12,
		"uniwide":   cmdUniWide,
		"ablation":  cmdAblation,
		"churn":     cmdChurn,
		"predictor": cmdPredictor,
		"scaling":   cmdScaling,
		"refresh":   cmdRefresh,
		"mixed":     cmdMixed,
	}
	if name == "all" {
		for _, n := range []string{
			"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1",
			"fig8", "fig9", "fig10", "fig11", "fig12", "uniwide", "ablation",
			"churn", "predictor", "scaling", "refresh", "mixed",
		} {
			fmt.Printf("==== %s ====\n", n)
			if err := commands[n](cfg); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Println()
		}
		return nil
	}
	cmd, ok := commands[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return cmd(cfg)
}

// writeCSV writes rows to <dir>/<name>.csv when -csv is set.
func writeCSV(cfg config, name, header string, rows []string) error {
	if cfg.csv == "" {
		return nil
	}
	path := filepath.Join(cfg.csv, name+".csv")
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("(csv written to %s)\n", path)
	return nil
}

// gbDays formats a capacity in GB.
func gbCap(capacity int64) string {
	return fmt.Sprintf("%dGB", capacity/experiments.GB)
}
