package main

import (
	"fmt"
	"time"

	"besteffs/internal/experiments"
	"besteffs/internal/plot"
	"besteffs/internal/timeconst"
)

// cmdFig2 prints the cumulative storage demand of the ramp workload.
func cmdFig2(cfg config) error {
	res, err := experiments.RunFig2(experiments.Fig2Config{Seed: cfg.seed})
	if err != nil {
		return err
	}
	chart := plot.Chart{
		Title:  "Figure 2: cumulative storage demand of the ramp workload (one year)",
		XLabel: "day",
		YLabel: "GB",
	}
	pts := make([]plot.Point, len(res.CumulativeGB))
	rows := make([]string, len(res.CumulativeGB))
	for i, d := range res.CumulativeGB {
		pts[i] = plot.Point{X: float64(d.Day), Y: d.Value}
		rows[i] = fmt.Sprintf("%d,%.2f", d.Day, d.Value)
	}
	chart.Add("cumulative demand", pts)
	fmt.Print(chart.Render())
	fmt.Printf("total demand: %.0f GB over %d objects\n", res.TotalGB, res.Objects)
	fmt.Printf("traditional fill day: 80GB on day %d, 120GB on day %d (paper: \"about 40 to 50 days\")\n",
		res.FillDay80, res.FillDay120)
	return writeCSV(cfg, "fig2", "day,cumulative_gb", rows)
}

// runFig3 shares the Section 5.1 run across fig3/fig4/fig6/fig7 commands.
func runFig3(cfg config) ([]experiments.PolicyRun, error) {
	return experiments.RunFig3(experiments.Fig3Config{Seed: cfg.seed})
}

// cmdFig3 prints the achieved lifetimes per policy and capacity.
func cmdFig3(cfg config) error {
	runs, err := runFig3(cfg)
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, r := range runs {
		s := r.LifetimeSummary
		rows = append(rows, []string{
			string(r.Policy), gbCap(r.Capacity),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.1f", s.P10),
			fmt.Sprintf("%.1f", s.Median),
			fmt.Sprintf("%.1f", s.P90),
			fmt.Sprintf("%.1f", s.Mean),
		})
		for _, p := range r.Lifetimes {
			csv = append(csv, fmt.Sprintf("%s,%d,%.2f,%.2f",
				r.Policy, r.Capacity/experiments.GB, p.EvictionDay, p.LifetimeDays))
		}
	}
	fmt.Println("Figure 3: lifetime achieved (days, measured at eviction)")
	fmt.Print(plot.Table(
		[]string{"policy", "disk", "evictions", "p10", "median", "p90", "mean"}, rows))
	// One overlay chart per disk, all three policies (daily-mean series).
	for _, capacity := range []int64{80 * experiments.GB, 120 * experiments.GB} {
		chart := plot.Chart{
			Title:  fmt.Sprintf("lifetime achieved vs eviction day, %s", gbCap(capacity)),
			XLabel: "eviction day", YLabel: "lifetime (days)", Height: 14,
		}
		for _, r := range runs {
			if r.Capacity != capacity {
				continue
			}
			chart.Add(string(r.Policy), dailyMeanLifetimes(r.Lifetimes))
		}
		fmt.Print(chart.Render())
	}
	return writeCSV(cfg, "fig3", "policy,capacity_gb,eviction_day,lifetime_days", csv)
}

// dailyMeanLifetimes averages lifetime points per eviction day so overlaid
// policy series stay readable.
func dailyMeanLifetimes(points []experiments.LifetimePoint) []plot.Point {
	type acc struct {
		sum float64
		n   int
	}
	byDay := make(map[int]*acc)
	for _, p := range points {
		day := int(p.EvictionDay)
		a := byDay[day]
		if a == nil {
			a = &acc{}
			byDay[day] = a
		}
		a.sum += p.LifetimeDays
		a.n++
	}
	out := make([]plot.Point, 0, len(byDay))
	for day, a := range byDay {
		out = append(out, plot.Point{X: float64(day), Y: a.sum / float64(a.n)})
	}
	return out
}

// cmdFig4 prints requests turned down because of full storage.
func cmdFig4(cfg config) error {
	runs, err := runFig3(cfg)
	if err != nil {
		return err
	}
	var rows [][]string
	var csv []string
	for _, r := range runs {
		rows = append(rows, []string{
			string(r.Policy), gbCap(r.Capacity),
			fmt.Sprintf("%d", r.TotalRejections),
			fmt.Sprintf("%d", r.Admitted),
		})
		for _, d := range r.RejectionsByDay {
			csv = append(csv, fmt.Sprintf("%s,%d,%d,%d",
				r.Policy, r.Capacity/experiments.GB, d.Day, d.Count))
		}
	}
	fmt.Println("Figure 4: requests turned down because of full storage")
	fmt.Println("(storage is never full for Palimpsest)")
	fmt.Print(plot.Table([]string{"policy", "disk", "rejected", "admitted"}, rows))
	return writeCSV(cfg, "fig4", "policy,capacity_gb,day,rejections", csv)
}

// cmdFig5 prints the Palimpsest time-constant analysis.
func cmdFig5(cfg config) error {
	res, err := experiments.RunFig5(experiments.Fig5Config{Seed: cfg.seed})
	if err != nil {
		return err
	}
	// The paper's figure is a time series of the measured constants; plot
	// the daily-window series (the hourly one is mostly empty windows).
	for i, a := range res.Analyses {
		if a.Window != 24*time.Hour {
			continue
		}
		chart := plot.Chart{
			Title:  "Figure 5: daily-window time constant over time",
			XLabel: "day", YLabel: "tau (days)", Height: 12,
		}
		pts := make([]plot.Point, len(res.Series[i]))
		for j, smp := range res.Series[i] {
			pts[j] = plot.Point{
				X: smp.Start.Hours() / 24,
				Y: smp.Tau.Hours() / 24,
			}
		}
		chart.Add("tau (day windows)", pts)
		fmt.Print(chart.Render())
	}
	return printTimeConstants("Figure 5: Palimpsest time constant (ramp workload, 80GB)",
		cfg, "fig5", res.Analyses)
}

// cmdFig6 prints the instantaneous storage importance density.
func cmdFig6(cfg config) error {
	runs, err := runFig3(cfg)
	if err != nil {
		return err
	}
	var csv []string
	for _, r := range runs {
		if r.Policy != experiments.PolicyTemporal {
			continue
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("Figure 6: instantaneous storage importance density, %s", gbCap(r.Capacity)),
			XLabel: "day", YLabel: "density", Height: 12,
			YFixed: true, YMin: 0, YMax: 1,
		}
		pts := make([]plot.Point, 0, len(r.Density))
		for _, p := range r.Density {
			day := float64(p.T) / float64(experiments.Day)
			pts = append(pts, plot.Point{X: day, Y: p.V})
			csv = append(csv, fmt.Sprintf("%d,%.3f,%.4f", r.Capacity/experiments.GB, day, p.V))
		}
		chart.Add("density", pts)
		fmt.Print(chart.Render())
	}
	return writeCSV(cfg, "fig6", "capacity_gb,day,density", csv)
}

// cmdFig7 prints the byte-importance CDF at the snapshot instant.
func cmdFig7(cfg config) error {
	res, err := experiments.RunFig7(experiments.Fig7Config{Seed: cfg.seed})
	if err != nil {
		return err
	}
	chart := plot.Chart{
		Title: fmt.Sprintf(
			"Figure 7: CDF of byte importance at density %.4f (day %.0f)",
			res.Density, res.SnapshotDay),
		XLabel: "importance", YLabel: "cumulative byte fraction", Height: 12,
		YFixed: true, YMin: 0, YMax: 1,
	}
	pts := make([]plot.Point, len(res.CDF))
	csv := make([]string, len(res.CDF))
	for i, p := range res.CDF {
		pts[i] = plot.Point{X: p.Value, Y: p.Fraction}
		csv[i] = fmt.Sprintf("%.4f,%.4f", p.Value, p.Fraction)
	}
	chart.Add("byte importance CDF", pts)
	fmt.Print(chart.Render())
	fmt.Printf("bytes at importance one: %.0f%% (paper: 57%%)\n", res.FractionAtOne*100)
	fmt.Printf("lowest stored importance: %.2f (paper: objects below 0.25 cannot be stored)\n",
		res.MinStoredImportance)
	return writeCSV(cfg, "fig7", "importance,cumulative_fraction", csv)
}

// printTimeConstants renders a time-constant analysis table.
func printTimeConstants(title string, cfg config, csvName string, analyses []timeconst.Analysis) error {
	fmt.Println(title)
	var rows [][]string
	var csv []string
	for _, a := range analyses {
		rows = append(rows, []string{
			a.Window.String(),
			fmt.Sprintf("%d", a.Samples),
			fmt.Sprintf("%d", a.EmptyWindows),
			fmt.Sprintf("%.1f", a.TauDays.Mean),
			fmt.Sprintf("%.1f", a.TauDays.StdDev),
			fmt.Sprintf("%.2f", a.CoV),
			fmt.Sprintf("%.1f", a.Hetero.LM),
			fmt.Sprintf("%t", a.Hetero.Heteroscedastic()),
		})
		csv = append(csv, fmt.Sprintf("%s,%d,%d,%.3f,%.3f,%.3f,%.3f",
			a.Window, a.Samples, a.EmptyWindows, a.TauDays.Mean,
			a.TauDays.StdDev, a.CoV, a.Hetero.LM))
	}
	fmt.Print(plot.Table([]string{
		"window", "samples", "empty", "tau mean (d)", "tau stddev", "CoV", "BP LM", "heteroscedastic",
	}, rows))
	return writeCSV(cfg, csvName,
		"window,samples,empty_windows,tau_mean_days,tau_stddev_days,cov,bp_lm", csv)
}

// cmdAblation sweeps the persist/wane split of a fixed 30-day two-step
// annotation: the expressiveness knob a content creator actually turns.
func cmdAblation(cfg config) error {
	rows, err := experiments.RunAblation(experiments.AblationConfig{Seed: cfg.seed})
	if err != nil {
		return err
	}
	var cells [][]string
	var csv []string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%dd + %dd", r.PersistDays, r.WaneDays),
			fmt.Sprintf("%d", r.Rejections),
			fmt.Sprintf("%.1f", r.GuaranteedDays),
			fmt.Sprintf("%.1f", r.Lifetime.Median),
			fmt.Sprintf("%.1f", r.Lifetime.Mean),
			fmt.Sprintf("%.3f", r.MeanDensity),
		})
		csv = append(csv, fmt.Sprintf("%d,%d,%d,%.2f,%.2f,%.2f,%.4f",
			r.PersistDays, r.WaneDays, r.Rejections, r.GuaranteedDays,
			r.Lifetime.Median, r.Lifetime.Mean, r.MeanDensity))
	}
	fmt.Println("Ablation: persist/wane split of a 30-day two-step annotation (80GB, ramp workload)")
	fmt.Println("persist=0d is pure linear decay; persist=30d is the paper's no-temporal policy")
	fmt.Print(plot.Table([]string{
		"persist+wane", "rejections", "guaranteed (d)", "median lifetime (d)",
		"mean (d)", "steady density",
	}, cells))
	return writeCSV(cfg, "ablation",
		"persist_days,wane_days,rejections,guaranteed_days,median_days,mean_days,steady_density", csv)
}

// cmdScaling sweeps capacity with constant annotations: the Section 4.2
// scalability objective.
func cmdScaling(cfg config) error {
	rows, err := experiments.RunScaling(experiments.ScalingConfig{Seed: cfg.seed})
	if err != nil {
		return err
	}
	var cells [][]string
	var csv []string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%dGB", r.CapacityGB),
			fmt.Sprintf("%d", r.Rejections),
			fmt.Sprintf("%.1f", r.Lifetime.Median),
			fmt.Sprintf("%.1f", r.Lifetime.P90),
			fmt.Sprintf("%.3f", r.SteadyDensity),
		})
		csv = append(csv, fmt.Sprintf("%d,%d,%.2f,%.2f,%.4f",
			r.CapacityGB, r.Rejections, r.Lifetime.Median, r.Lifetime.P90, r.SteadyDensity))
	}
	fmt.Println("Scaling (Section 4.2 objective): constant annotations, growing disk")
	fmt.Print(plot.Table([]string{
		"disk", "rejections", "median lifetime (d)", "p90 (d)", "steady density",
	}, cells))
	fmt.Println("behavior scales with storage while the annotation never changes")
	return writeCSV(cfg, "scaling",
		"capacity_gb,rejections,median_days,p90_days,steady_density", csv)
}

// cmdRefresh quantifies the paper's Palimpsest critique: applications that
// schedule rejuvenation from estimated time constants lose objects when the
// estimate misreads the arrival rate.
func cmdRefresh(cfg config) error {
	rows, err := experiments.RunRefresh(experiments.RefreshConfig{Seed: cfg.seed})
	if err != nil {
		return err
	}
	var cells [][]string
	var csv []string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Strategy,
			fmt.Sprintf("%d", r.Tracked),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%.1f%%", r.LostFraction*100),
			fmt.Sprintf("%d", r.Refreshes),
		})
		csv = append(csv, fmt.Sprintf("%q,%d,%d,%.4f,%d",
			r.Strategy, r.Tracked, r.Lost, r.LostFraction, r.Refreshes))
	}
	fmt.Println("Refresh (extension): keeping an object alive 30 days on Palimpsest vs annotation")
	fmt.Print(plot.Table([]string{
		"strategy", "tracked", "lost", "lost %", "wake-ups",
	}, cells))
	fmt.Println("\"unless the application can predict this rejuvenation duration accurately,")
	fmt.Println("objects might be irreparably lost\" (Section 2); the annotation needs no wake-ups")
	return writeCSV(cfg, "refresh", "strategy,tracked,lost,lost_fraction,refreshes", csv)
}

// cmdMixed runs the multi-application sharing experiment the paper defers
// to follow-up work.
func cmdMixed(cfg config) error {
	res, err := experiments.RunMixed(experiments.MixedConfig{Seed: cfg.seed})
	if err != nil {
		return err
	}
	var cells [][]string
	var csv []string
	for _, a := range res.Apps {
		cells = append(cells, []string{
			a.Name,
			fmt.Sprintf("%d", a.Offered),
			fmt.Sprintf("%d", a.Admitted),
			fmt.Sprintf("%d", a.Rejected),
			fmt.Sprintf("%d", a.Evicted),
			fmt.Sprintf("%.1f", a.Lifetime.Median),
			fmt.Sprintf("%.1f", float64(a.ResidentBytesAtEnd)/float64(experiments.GB)),
		})
		csv = append(csv, fmt.Sprintf("%s,%d,%d,%d,%d,%.2f,%d",
			a.Name, a.Offered, a.Admitted, a.Rejected, a.Evicted,
			a.Lifetime.Median, a.ResidentBytesAtEnd))
	}
	fmt.Println("Mixed applications (extension): archiver + lectures + cache on one 80GB disk")
	fmt.Print(plot.Table([]string{
		"app", "offered", "admitted", "rejected", "evicted",
		"median lifetime (d)", "resident GB at end",
	}, cells))
	fmt.Print("cache admission rate by quarter:")
	for q, rate := range res.CacheAdmitRateByQuarter {
		fmt.Printf("  Q%d %.0f%%", q+1, rate*100)
	}
	fmt.Printf("\nfinal density %.3f\n", res.FinalDensity)
	fmt.Println("\"the storage appears full for less important objects\" (abstract): the cache")
	fmt.Println("starves as durable data accumulates; the archiver is never preempted")
	return writeCSV(cfg, "mixed",
		"app,offered,admitted,rejected,evicted,median_days,resident_bytes", csv)
}
